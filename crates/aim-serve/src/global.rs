//! Multi-region orchestration: heterogeneous fleets, region-loss chaos,
//! retry budgets and graceful degradation.
//!
//! A [`GlobalRouter`] owns N [`FleetSession`] *regions*, each built over its
//! own [`ServeRuntime`] — regions may run entirely different silicon
//! (low-power vs sprint booster configurations, different plan sets), which
//! is why the final [`GlobalReport`] keeps per-region [`FleetReport`]s
//! intact and only merges at the counter level (per-region accumulators are
//! calibrated to their own nominal frequency and must not be float-merged
//! across silicon).
//!
//! ## Placement and routing
//!
//! Model placement is explicit: each [`RegionSpec`] names the global models
//! whose [`CompiledPlan`]s are resident in that region (position in the list
//! = region-local plan index).  Every compiled plan residency is a paid
//! compile-once cost, and every replica buys routing flexibility — the
//! trade the report's [`PlacementStats`] track.  [`place_models`] builds the
//! canonical round-robin replication layout.  Requests route to a region
//! holding their model via a deterministic [`RoutePolicy`]: `ByModel` pins
//! a model's traffic to one holder, `LeastBacklog` steps the candidate
//! fleets to the routing instant (a virtual-time snapshot) and picks the
//! lowest weighted backlog.
//!
//! ## The region health machine
//!
//! Each region walks `Healthy → Suspect → Down → Recovering → Healthy`,
//! driven by scripted [`RegionFaultPlan`] events and two configured timers:
//!
//! * [`RegionOutage`] marks the region **Suspect**: it stops taking new
//!   routes immediately, but nothing is moved yet (the outage may be a
//!   blip).
//! * After `suspect_grace_cycles` the region goes **Down**: every
//!   committed-but-not-started group and open batch is evicted
//!   ([`FleetSession::evict_pending`]) and re-routed.  Work that already
//!   started is never disturbed and completes in place —
//!   drain-don't-strand.
//! * [`RegionRecovery`] marks it **Recovering**: it takes routes again
//!   (failback happens through normal routing, survivors are never
//!   forcibly drained), and after `recovery_warmup_cycles` it is
//!   **Healthy** again.
//!
//! All transitions are virtual-time events in one deterministic stream with
//! plan events, so report bytes are invariant to stepping granularity and
//! polling order, exactly like the layers below.
//!
//! ## Retry budgets and graceful degradation
//!
//! A request that cannot be placed (no routable region holds its model)
//! consumes one attempt from its [`RetryConfig`] budget and is re-routed at
//! `now + base · multiplier^(attempt-1)` — deterministic virtual-time
//! backoff, no wall clocks.  When the budget is exhausted the request is
//! **shed**, surfaced as the distinct [`GlobalStatus::Shed`] outcome rather
//! than a silent rejection.  Shedding is also how overload degrades
//! gracefully: [`ShedPolicy`] gives each [`SloClass`] a weighted-backlog
//! ceiling (best-effort lowest), so when surviving capacity cannot absorb
//! the load, best-effort traffic sheds first and latency-sensitive traffic
//! keeps its head above water.
//!
//! [`RegionOutage`]: RegionFaultKind::RegionOutage
//! [`RegionRecovery`]: RegionFaultKind::RegionRecovery
//! [`CompiledPlan`]: aim_core::pipeline::CompiledPlan

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use workloads::inputs::{FaultPlan, RegionFaultKind, RegionFaultPlan, SloClass, TraceRequest};

use crate::fleet::{ClassAttainment, FleetConfig, FleetReport, FleetSession};
use crate::runtime::ServeRuntime;
use crate::session::CompletionStatus;

/// Health of one region, as seen by the router's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionHealth {
    /// Taking traffic normally.
    Healthy,
    /// An outage struck; no new routes, nothing migrated yet.
    Suspect,
    /// Confirmed out: pending work evicted and migrated, no routes.
    Down,
    /// Back in service and taking routes, warming toward Healthy.
    Recovering,
}

impl RegionHealth {
    /// Stable name of the state.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Suspect => "suspect",
            Self::Down => "down",
            Self::Recovering => "recovering",
        }
    }

    /// Whether the router may send new work to a region in this state.
    #[must_use]
    pub fn routable(self) -> bool {
        matches!(self, Self::Healthy | Self::Recovering)
    }

    /// Index into per-state ledgers.
    fn index(self) -> usize {
        match self {
            Self::Healthy => 0,
            Self::Suspect => 1,
            Self::Down => 2,
            Self::Recovering => 3,
        }
    }
}

/// Bounded re-routing policy: how often and with what backoff a request
/// that found no routable holder tries again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Re-routing attempts a request may consume before it is shed.
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual cycles.
    pub backoff_base_cycles: u64,
    /// Exponential backoff factor: attempt `n` waits
    /// `base · multiplier^(n-1)` cycles (saturating).
    pub backoff_multiplier: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_cycles: 20_000,
            backoff_multiplier: 2,
        }
    }
}

impl RetryConfig {
    /// Starts a builder seeded with [`RetryConfig::default`].
    #[must_use]
    pub fn builder() -> RetryConfigBuilder {
        RetryConfigBuilder {
            config: Self::default(),
        }
    }

    /// Rejects degenerate retry policies at construction time.
    ///
    /// # Panics
    ///
    /// Panics on a zero retry budget (a request that can never retry would
    /// silently shed on the first outage), a zero backoff base (retries
    /// would busy-spin at one virtual instant), or a zero multiplier.
    pub fn validate(&self) {
        assert!(
            self.max_attempts >= 1,
            "the retry budget must allow at least one attempt"
        );
        assert!(
            self.backoff_base_cycles >= 1,
            "retry backoff must wait at least one cycle"
        );
        assert!(
            self.backoff_multiplier >= 1,
            "the backoff multiplier must be at least 1"
        );
    }

    /// Virtual-cycle backoff before attempt `attempt` (1-based), saturating.
    #[must_use]
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let factor = u64::from(self.backoff_multiplier).saturating_pow(attempt.saturating_sub(1));
        self.backoff_base_cycles.saturating_mul(factor)
    }
}

/// Builder for [`RetryConfig`]; [`build`](Self::build) validates, so a zero
/// budget fails where it is written.
#[derive(Debug, Clone)]
pub struct RetryConfigBuilder {
    config: RetryConfig,
}

impl RetryConfigBuilder {
    /// Sets the re-routing attempts a request may consume.
    #[must_use]
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.config.max_attempts = attempts;
        self
    }

    /// Sets the backoff before the first retry, in virtual cycles.
    #[must_use]
    pub fn backoff_base_cycles(mut self, cycles: u64) -> Self {
        self.config.backoff_base_cycles = cycles;
        self
    }

    /// Sets the exponential backoff factor.
    #[must_use]
    pub fn backoff_multiplier(mut self, multiplier: u32) -> Self {
        self.config.backoff_multiplier = multiplier;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics when the policy is degenerate — see [`RetryConfig::validate`].
    #[must_use]
    pub fn build(self) -> RetryConfig {
        self.config.validate();
        self.config
    }
}

/// Graceful-degradation policy: per-class weighted-backlog ceilings.
///
/// When the region a request routed to already carries more weighted
/// backlog than the request's class ceiling, the request is shed instead of
/// submitted.  Ceilings must be non-decreasing in class priority — that
/// ordering *is* the shed order: best-effort sheds first, latency-sensitive
/// last.  `u64::MAX` disables shedding for a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedPolicy {
    /// Per-class ceilings, ascending priority order ([`SloClass::ALL`]).
    pub backlog_ceiling_cycles: [u64; 3],
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            backlog_ceiling_cycles: [u64::MAX; 3],
        }
    }
}

/// Deterministic policy routing each request to a region holding its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// `model % holders` over the routable holders — pins each model's
    /// traffic to one region, maximising batching leverage.
    ByModel,
    /// Steps every routable holder to the routing instant and picks the one
    /// with the lowest weighted backlog (ties: lowest region index) — a
    /// deterministic virtual-time load snapshot.
    LeastBacklog,
}

/// Configuration of a [`GlobalRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalConfig {
    /// How requests pick a region among the holders of their model.
    pub route: RoutePolicy,
    /// Bounded re-routing with deterministic virtual-time backoff.
    pub retry: RetryConfig,
    /// Per-class overload shedding.
    pub shed: ShedPolicy,
    /// Cycles a region stays Suspect after an outage before it is confirmed
    /// Down and its pending work migrates.
    pub suspect_grace_cycles: u64,
    /// Cycles a region stays Recovering after a recovery before it counts
    /// as Healthy again (it takes traffic throughout).
    pub recovery_warmup_cycles: u64,
    /// Per-class weights of the backlog-pressure snapshot used by
    /// `LeastBacklog` routing and by [`ShedPolicy`], ascending priority
    /// order.
    pub class_weights: [u64; 3],
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            route: RoutePolicy::ByModel,
            retry: RetryConfig::default(),
            shed: ShedPolicy::default(),
            suspect_grace_cycles: 0,
            recovery_warmup_cycles: 0,
            class_weights: [1, 2, 4],
        }
    }
}

impl GlobalConfig {
    /// Rejects degenerate global policies at construction time.
    ///
    /// # Panics
    ///
    /// Panics when the retry policy is degenerate or the shed ceilings are
    /// not non-decreasing in class priority (the shed order must shed
    /// lower classes first).
    pub fn validate(&self) {
        self.retry.validate();
        let c = self.shed.backlog_ceiling_cycles;
        assert!(
            c[0] <= c[1] && c[1] <= c[2],
            "shed ceilings must be non-decreasing in class priority \
             (best-effort sheds first)"
        );
    }
}

/// One region of a global deployment: a named fleet over its own runtime
/// (and therefore its own silicon), a chip-level fault plan, and the global
/// models resident in it.
#[derive(Debug)]
pub struct RegionSpec<'rt> {
    /// Region name, carried into the report.
    pub name: String,
    /// The region's serving runtime — its compiled plans and chip config.
    pub runtime: &'rt ServeRuntime,
    /// The region's fleet shape (shards, shard policy, elastic scaling).
    pub fleet: FleetConfig,
    /// Chip-level faults striking inside this region.
    pub faults: FaultPlan,
    /// Global model ids resident here; position = region-local plan index,
    /// so `runtime.plans()[i]` must be the plan of global model `models[i]`.
    pub models: Vec<usize>,
}

/// Canonical round-robin placement: global model `m` is resident in regions
/// `(m + k) % regions` for `k in 0..replicas` — each extra replica is one
/// more compile-once cost bought for routing flexibility.  Returns the
/// per-region resident-model lists (ascending), ready for
/// [`RegionSpec::models`].
///
/// # Panics
///
/// Panics if `regions`, `models` or `replicas` is zero.
#[must_use]
pub fn place_models(models: usize, regions: usize, replicas: usize) -> Vec<Vec<usize>> {
    assert!(regions > 0, "placement needs at least one region");
    assert!(models > 0, "placement needs at least one model");
    assert!(replicas > 0, "placement needs at least one replica");
    let replicas = replicas.min(regions);
    let mut layout = vec![Vec::new(); regions];
    for model in 0..models {
        for k in 0..replicas {
            layout[(model + k) % regions].push(model);
        }
    }
    layout
}

/// How one submitted request left the global deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlobalStatus {
    /// The request executed to completion in `region`.
    Served {
        /// Region that served it.
        region: usize,
        /// `finish − original arrival` — the *global* latency, including
        /// any outage wait and retry backoff the request sat through.
        latency_cycles: u64,
        /// Whether it finished past its (original) deadline.
        deadline_missed: bool,
        /// Whether it was evicted off at least one downed region or
        /// deferred through the retry queue before serving —
        /// "migrated and served".
        migrated: bool,
        /// Whether its group was requeued off a dead chip inside the
        /// serving region (chip-level failover).
        failed_over: bool,
    },
    /// Admission control in the routed region bounced the request.
    Rejected {
        /// Region that rejected it.
        region: usize,
        /// Estimated queueing delay its group faced (cycles).
        backlog_cycles: u64,
        /// The class cap it exceeded (cycles).
        backlog_cap_cycles: u64,
    },
    /// The router shed the request — the graceful-degradation outcome.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
        /// Retry attempts it had consumed.
        attempts: u32,
    },
}

/// Why the router shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The routed region's weighted backlog exceeded the class ceiling.
    Overload,
    /// The retry budget ran out with no routable region holding the model.
    RetryBudgetExhausted,
}

/// One streamed global outcome, yielded by
/// [`GlobalRouter::poll_completions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalOutcome {
    /// Global submission index of the request.
    pub request: usize,
    /// Global model the request targeted.
    pub model: usize,
    /// SLO class it was served under.
    pub slo: SloClass,
    /// How it left the deployment.
    pub status: GlobalStatus,
}

/// Report of one region: its health ledger plus the full [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// Global models resident in the region.
    pub models: Vec<usize>,
    /// Health at drain.
    pub final_health: RegionHealth,
    /// Cycles spent Healthy.
    pub healthy_cycles: u64,
    /// Cycles spent Suspect.
    pub suspect_cycles: u64,
    /// Cycles spent Down.
    pub down_cycles: u64,
    /// Cycles spent Recovering.
    pub recovering_cycles: u64,
    /// The region's own fleet report (untouched — heterogeneous regions
    /// must not be float-merged).
    pub fleet: FleetReport,
}

/// Placement accounting: the compile-once vs routing-flexibility trade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Total plan residencies across regions — each one is a compile paid.
    pub resident_plans: usize,
    /// Replica count per global model (routing flexibility bought).
    pub per_model_replicas: Vec<usize>,
}

/// Region-level availability of one global run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalAvailability {
    /// Regions in the deployment.
    pub regions: usize,
    /// Region-plan events applied.
    pub region_faults_applied: usize,
    /// Outages struck.
    pub outages: usize,
    /// Recoveries struck.
    pub recoveries: usize,
    /// Flash-crowd events observed (their traffic rides in the trace).
    pub flash_crowd_events: usize,
    /// Distinct requests evicted off a downed region at least once.
    pub requests_migrated: usize,
    /// Total evictions (a request evicted twice counts twice).
    pub migration_events: usize,
    /// Of the migrated requests, how many were ultimately served.
    pub migrated_and_served: usize,
    /// Retry events scheduled (deferred re-routes with backoff).
    pub retries_scheduled: usize,
    /// Requests shed — budget exhaustion plus overload.
    pub requests_shed: usize,
    /// Shed requests per class, ascending priority order.
    pub shed_by_class: [usize; 3],
    /// Region-cycles spent Down, summed over regions.
    pub region_cycles_lost: u64,
    /// `region_cycles_lost` in seconds, each region at its own nominal
    /// frequency (regions are heterogeneous).
    pub region_seconds_lost: f64,
    /// Requests whose original arrival fell inside some region's Down
    /// interval — the outage window the attainment rows below judge.
    pub outage_window_requests: usize,
    /// SLO attainment inside the outage window, per class ascending:
    /// requests served within deadline over all outage-window requests of
    /// the class (shed and rejected count as misses; 1.0 for an empty
    /// class).
    pub per_class_outage_attainment: Vec<ClassAttainment>,
}

/// Counter-level totals across regions (no float merging — see
/// [`RegionReport::fleet`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalSummary {
    /// Requests submitted to the router.
    pub total_requests: usize,
    /// Requests served, summed over regions.
    pub served_requests: usize,
    /// Requests rejected by region admission control.
    pub rejected_requests: usize,
    /// Requests shed by the router.
    pub shed_requests: usize,
    /// Served requests that missed their (original) deadline.
    pub deadline_misses: usize,
    /// Largest region makespan (cycles) — the global completion time.
    pub makespan_cycles: u64,
    /// Served requests per second of virtual time, at the *first region's*
    /// nominal frequency (a cross-region summary needs one time base).
    pub throughput_rps: f64,
    /// Drift samples absorbed by the calibration loops, summed over regions
    /// (zero when no region ran the loop).
    pub calibration_samples: u64,
    /// Recalibration events applied across all regions.
    pub recalibrations: u64,
    /// Analytical→cycle-accurate demotions across all regions.
    pub demotions: u64,
    /// Cycle-accurate→analytical promotions across all regions.
    pub promotions: u64,
}

/// Aggregated outcome of one global run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalReport {
    /// Per-region reports, in region order.
    pub regions: Vec<RegionReport>,
    /// The placement trade the deployment paid for.
    pub placement: PlacementStats,
    /// Region-level availability: migrations, retries, sheds, lost
    /// region-time, outage-window attainment.
    pub availability: GlobalAvailability,
    /// Counter-level totals.
    pub summary: GlobalSummary,
}

/// How one tracked request was finally resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    Served {
        deadline_missed: bool,
        migrated: bool,
    },
    Rejected,
    Shed,
}

/// The router's book-keeping for one submitted request.
#[derive(Debug, Clone, Copy)]
struct RequestTrack {
    /// The original request — arrival and deadline as submitted.
    request: TraceRequest,
    /// Retry attempts consumed.
    attempts: u32,
    /// Times evicted off a downed region.
    evictions: u32,
    resolved: Option<Resolved>,
}

/// One region's live state inside the router.
#[derive(Debug)]
struct RegionState<'rt> {
    name: String,
    fleet: FleetSession<'rt>,
    /// Global model id → region-local plan index.
    local_model: Vec<Option<usize>>,
    models: Vec<usize>,
    nominal_ghz: f64,
    health: RegionHealth,
    state_since: u64,
    /// Closed per-state cycle ledger, indexed by [`RegionHealth::index`].
    state_cycles: [u64; 4],
    /// Bumped on every transition; pending timed transitions carry the
    /// generation they were scheduled under and go stale when it moves.
    generation: u64,
    /// `(start, end)` of every Down interval (`end` = `None` while open).
    down_intervals: Vec<(u64, Option<u64>)>,
    /// Fleet submission index → global request id.
    submitted_map: Vec<usize>,
}

/// The multi-region front door — see the [module docs](self) for semantics.
#[derive(Debug)]
pub struct GlobalRouter<'rt> {
    config: GlobalConfig,
    plan: RegionFaultPlan,
    next_plan_event: usize,
    regions: Vec<RegionState<'rt>>,
    /// Global model id → regions holding it (ascending).
    holders: Vec<Vec<usize>>,
    clock: u64,
    /// Latest externally scheduled event: plan event, submitted arrival,
    /// pending timed transition or retry.  Virtual time never advances past
    /// it (the [`FleetSession`] horizon rule, one level up).
    horizon: u64,
    drained: bool,
    tracks: Vec<RequestTrack>,
    /// Pending timed health transitions:
    /// `(at, seq) → (region, generation, target)`.
    transitions: BTreeMap<(u64, u64), (usize, u64, RegionHealth)>,
    /// Pending retries: `(at, seq) → request id`.
    retries: BTreeMap<(u64, u64), usize>,
    next_seq: u64,
    completions: Vec<GlobalOutcome>,
    outages: usize,
    recoveries: usize,
    flash_crowds: usize,
    migration_events: usize,
    retries_scheduled: usize,
    shed_by_class: [usize; 3],
}

impl<'rt> GlobalRouter<'rt> {
    /// Opens a global deployment of `regions` over `model_count` global
    /// models, with the region-fault schedule armed.
    ///
    /// # Panics
    ///
    /// Panics on an empty region list, a degenerate [`GlobalConfig`], an
    /// invalid region plan, a region whose resident-model list does not
    /// match its runtime's plan count (or repeats/overflows model ids), or
    /// a model resident nowhere.
    #[must_use]
    pub fn new(
        regions: Vec<RegionSpec<'rt>>,
        model_count: usize,
        config: GlobalConfig,
        plan: RegionFaultPlan,
    ) -> Self {
        assert!(
            !regions.is_empty(),
            "a deployment needs at least one region"
        );
        assert!(model_count > 0, "a deployment needs at least one model");
        config.validate();
        plan.validate(regions.len(), model_count);
        let mut holders: Vec<Vec<usize>> = vec![Vec::new(); model_count];
        let mut states = Vec::with_capacity(regions.len());
        let horizon = plan.events.last().map_or(0, |e| e.at_cycles);
        for (index, spec) in regions.into_iter().enumerate() {
            assert_eq!(
                spec.models.len(),
                spec.runtime.plans().len(),
                "region {} lists {} resident models but its runtime compiled {} plans",
                spec.name,
                spec.models.len(),
                spec.runtime.plans().len(),
            );
            let mut local_model = vec![None; model_count];
            for (local, &model) in spec.models.iter().enumerate() {
                assert!(
                    model < model_count,
                    "region {} hosts model {model} of a {model_count}-model catalogue",
                    spec.name
                );
                assert!(
                    local_model[model].is_none(),
                    "region {} hosts model {model} twice",
                    spec.name
                );
                local_model[model] = Some(local);
                holders[model].push(index);
            }
            let nominal_ghz = spec.runtime.plans()[0].chip_params().nominal_frequency_ghz;
            states.push(RegionState {
                name: spec.name,
                fleet: FleetSession::new(spec.runtime, spec.fleet, spec.faults),
                local_model,
                models: spec.models,
                nominal_ghz,
                health: RegionHealth::Healthy,
                state_since: 0,
                state_cycles: [0; 4],
                generation: 0,
                down_intervals: Vec::new(),
                submitted_map: Vec::new(),
            });
        }
        for (model, holding) in holders.iter().enumerate() {
            assert!(
                !holding.is_empty(),
                "model {model} is resident in no region — it could never be served"
            );
        }
        Self {
            config,
            plan,
            next_plan_event: 0,
            regions: states,
            holders,
            clock: 0,
            horizon,
            drained: false,
            tracks: Vec::new(),
            transitions: BTreeMap::new(),
            retries: BTreeMap::new(),
            next_seq: 0,
            completions: Vec::new(),
            outages: 0,
            recoveries: 0,
            flash_crowds: 0,
            migration_events: 0,
            retries_scheduled: 0,
            shed_by_class: [0; 3],
        }
    }

    /// The router's virtual clock (cycles).
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Requests submitted so far.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.tracks.len()
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// The global configuration.
    #[must_use]
    pub fn config(&self) -> &GlobalConfig {
        &self.config
    }

    /// Current health of `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn region_health(&self, region: usize) -> RegionHealth {
        self.regions[region].health
    }

    /// Accepts one request at the router's virtual "now" and routes it.
    /// Every region event, timed transition and retry due at or before the
    /// arrival applies first.
    ///
    /// # Panics
    ///
    /// Panics if the router was drained or the request names a model
    /// outside the catalogue.
    pub fn submit(&mut self, request: TraceRequest) {
        assert!(!self.drained, "cannot submit to a drained router");
        assert!(
            request.model < self.holders.len(),
            "request names model {} of a {}-model catalogue",
            request.model,
            self.holders.len()
        );
        let arrival = request.arrival_cycles.max(self.clock);
        self.horizon = self.horizon.max(arrival);
        self.advance(arrival);
        let id = self.tracks.len();
        self.tracks.push(RequestTrack {
            request,
            attempts: 0,
            evictions: 0,
            resolved: None,
        });
        self.route(id, arrival);
    }

    /// Steps the deployment up to virtual cycle `target`: applies due
    /// region events, health transitions and retries in time order, steps
    /// every region fleet, and harvests completions.  Stepping granularity
    /// never changes the final report bytes.
    pub fn run_until(&mut self, target: u64) {
        let target = target.min(self.horizon);
        self.advance(target);
        for state in &mut self.regions {
            state.fleet.run_until(target);
        }
        self.harvest();
    }

    /// Drains the accumulated global outcomes (region order within one
    /// harvest, submission-order request ids attached).
    pub fn poll_completions(&mut self) -> Vec<GlobalOutcome> {
        self.harvest();
        std::mem::take(&mut self.completions)
    }

    /// Applies every remaining scheduled event (retries can schedule more
    /// retries — the budget bounds the cascade), drains every region fleet,
    /// closes the health ledgers and freezes the final report.
    ///
    /// # Panics
    ///
    /// Panics if the router was already drained.
    pub fn drain(&mut self) -> GlobalReport {
        assert!(!self.drained, "router already drained");
        // Deferred retries may extend the horizon while firing; loop until
        // every queue is empty (bounded by the per-request budget).
        loop {
            self.advance(self.horizon);
            if self.next_plan_event >= self.plan.events.len()
                && self.transitions.is_empty()
                && self.retries.is_empty()
            {
                break;
            }
        }
        self.drained = true;
        let fleet_reports: Vec<FleetReport> = self
            .regions
            .iter_mut()
            .map(|state| state.fleet.drain())
            .collect();
        self.harvest();

        // Close every health ledger at the global completion time.
        let makespan = fleet_reports
            .iter()
            .map(|r| r.serve.makespan_cycles)
            .max()
            .unwrap_or(0)
            .max(self.clock);
        let mut region_cycles_lost = 0u64;
        let mut region_seconds_lost = 0.0f64;
        let mut regions = Vec::with_capacity(self.regions.len());
        let mut down_windows: Vec<(u64, u64)> = Vec::new();
        for (state, fleet) in self.regions.iter_mut().zip(fleet_reports) {
            state.state_cycles[state.health.index()] += makespan.saturating_sub(state.state_since);
            state.state_since = makespan;
            if let Some(last @ (_, None)) = state.down_intervals.last_mut() {
                last.1 = Some(makespan);
            }
            let down: u64 = state
                .down_intervals
                .iter()
                .map(|&(start, end)| end.unwrap_or(makespan).saturating_sub(start))
                .sum();
            region_cycles_lost += down;
            region_seconds_lost += down as f64 / (state.nominal_ghz * 1e9);
            down_windows.extend(
                state
                    .down_intervals
                    .iter()
                    .map(|&(start, end)| (start, end.unwrap_or(makespan))),
            );
            regions.push(RegionReport {
                name: state.name.clone(),
                models: state.models.clone(),
                final_health: state.health,
                healthy_cycles: state.state_cycles[0],
                suspect_cycles: state.state_cycles[1],
                down_cycles: state.state_cycles[2],
                recovering_cycles: state.state_cycles[3],
                fleet,
            });
        }

        // Outage-window attainment: judge every request whose *original*
        // arrival fell while some region was Down.
        let mut window_total = [0usize; 3];
        let mut window_good = [0usize; 3];
        let mut requests_migrated = 0usize;
        let mut migrated_and_served = 0usize;
        for track in &self.tracks {
            if track.evictions > 0 {
                requests_migrated += 1;
                if matches!(track.resolved, Some(Resolved::Served { .. })) {
                    migrated_and_served += 1;
                }
            }
            let arrival = track.request.arrival_cycles;
            let in_window = down_windows
                .iter()
                .any(|&(start, end)| arrival >= start && arrival < end);
            if !in_window {
                continue;
            }
            let class = track.request.slo.index();
            window_total[class] += 1;
            if matches!(
                track.resolved,
                Some(Resolved::Served {
                    deadline_missed: false,
                    ..
                })
            ) {
                window_good[class] += 1;
            }
        }
        let per_class_outage_attainment = SloClass::ALL
            .iter()
            .map(|&class| ClassAttainment {
                class,
                attainment: if window_total[class.index()] == 0 {
                    1.0
                } else {
                    window_good[class.index()] as f64 / window_total[class.index()] as f64
                },
            })
            .collect();

        let served_requests: usize = regions.iter().map(|r| r.fleet.serve.served_requests).sum();
        let rejected_requests: usize = regions
            .iter()
            .map(|r| r.fleet.serve.rejected_requests)
            .sum();
        let deadline_misses: usize = regions.iter().map(|r| r.fleet.serve.deadline_misses).sum();
        let shed_requests: usize = self.shed_by_class.iter().sum();
        let cal_total = |f: fn(&crate::report::CalibrationStats) -> u64| -> u64 {
            regions
                .iter()
                .map(|r| r.fleet.serve.calibration.as_ref().map_or(0, f))
                .sum()
        };
        let nominal_ghz = self.regions[0].nominal_ghz;
        let virtual_seconds = makespan as f64 / (nominal_ghz * 1e9);
        let per_model_replicas: Vec<usize> = self.holders.iter().map(Vec::len).collect();
        GlobalReport {
            placement: PlacementStats {
                resident_plans: per_model_replicas.iter().sum(),
                per_model_replicas,
            },
            availability: GlobalAvailability {
                regions: regions.len(),
                region_faults_applied: self.next_plan_event,
                outages: self.outages,
                recoveries: self.recoveries,
                flash_crowd_events: self.flash_crowds,
                requests_migrated,
                migration_events: self.migration_events,
                migrated_and_served,
                retries_scheduled: self.retries_scheduled,
                requests_shed: shed_requests,
                shed_by_class: self.shed_by_class,
                region_cycles_lost,
                region_seconds_lost,
                outage_window_requests: window_total.iter().sum(),
                per_class_outage_attainment,
            },
            summary: GlobalSummary {
                total_requests: self.tracks.len(),
                served_requests,
                rejected_requests,
                shed_requests,
                deadline_misses,
                makespan_cycles: makespan,
                throughput_rps: if virtual_seconds > 0.0 {
                    served_requests as f64 / virtual_seconds
                } else {
                    0.0
                },
                calibration_samples: cal_total(|c| c.samples),
                recalibrations: cal_total(|c| c.recalibrations),
                demotions: cal_total(|c| c.demotions),
                promotions: cal_total(|c| c.promotions),
            },
            regions,
        }
    }

    /// Offline convenience: submit the whole trace, then drain — the global
    /// analogue of [`FleetSession::serve_trace`].
    #[must_use]
    pub fn serve_trace(
        regions: Vec<RegionSpec<'rt>>,
        model_count: usize,
        config: GlobalConfig,
        plan: RegionFaultPlan,
        trace: &[TraceRequest],
    ) -> GlobalReport {
        let mut router = Self::new(regions, model_count, config, plan);
        for request in trace {
            router.submit(*request);
        }
        router.drain()
    }

    // --- the global event loop ---------------------------------------------

    /// Applies every scheduled event due at or before `target`, in time
    /// order; same-cycle ties resolve plan events → health transitions →
    /// retries, each source internally ordered (plan canonical order,
    /// scheduling sequence for the rest).
    fn advance(&mut self, target: u64) {
        loop {
            let plan_at = self
                .plan
                .events
                .get(self.next_plan_event)
                .map(|e| e.at_cycles)
                .filter(|&t| t <= target);
            let transition_at = self
                .transitions
                .keys()
                .next()
                .map(|&(t, _)| t)
                .filter(|&t| t <= target);
            let retry_at = self
                .retries
                .keys()
                .next()
                .map(|&(t, _)| t)
                .filter(|&t| t <= target);
            let due = [plan_at, transition_at, retry_at]
                .into_iter()
                .enumerate()
                .filter_map(|(rank, at)| at.map(|t| (t, rank)))
                .min();
            match due {
                None => break,
                Some((_, 0)) => self.apply_plan_event(),
                Some((_, 1)) => self.apply_transition(),
                Some((_, _)) => self.apply_retry(),
            }
        }
        self.clock = self.clock.max(target);
    }

    /// Applies the next region-plan event.
    fn apply_plan_event(&mut self) {
        let event = self.plan.events[self.next_plan_event];
        self.next_plan_event += 1;
        match event.kind {
            RegionFaultKind::RegionOutage { region } => {
                self.outages += 1;
                self.set_health(region, RegionHealth::Suspect, event.at_cycles);
                let down_at = event
                    .at_cycles
                    .saturating_add(self.config.suspect_grace_cycles);
                self.schedule_transition(down_at, region, RegionHealth::Down);
            }
            RegionFaultKind::RegionRecovery { region } => {
                self.recoveries += 1;
                // Recovery may land while still Suspect (inside the grace
                // window): moving the generation cancels the pending Down.
                self.set_health(region, RegionHealth::Recovering, event.at_cycles);
                let healthy_at = event
                    .at_cycles
                    .saturating_add(self.config.recovery_warmup_cycles);
                self.schedule_transition(healthy_at, region, RegionHealth::Healthy);
            }
            RegionFaultKind::FlashCrowd { .. } => {
                // The surge's traffic was materialised into the trace by
                // `with_flash_crowds`; the router only counts the event.
                self.flash_crowds += 1;
            }
        }
    }

    /// Queues a timed health transition, pinned to the region's current
    /// generation so later transitions invalidate it.
    fn schedule_transition(&mut self, at: u64, region: usize, target: RegionHealth) {
        self.horizon = self.horizon.max(at);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.transitions
            .insert((at, seq), (region, self.regions[region].generation, target));
    }

    /// Fires the earliest pending timed transition.
    fn apply_transition(&mut self) {
        let (&(at, seq), &(region, generation, target)) = self
            .transitions
            .iter()
            .next()
            .expect("advance only fires with a pending transition");
        self.transitions.remove(&(at, seq));
        if self.regions[region].generation != generation {
            // A plan event moved the region on (e.g. it recovered inside
            // the grace window); this transition is stale.
            return;
        }
        self.set_health(region, target, at);
        if target == RegionHealth::Down {
            // The region is confirmed out: migrate everything that has not
            // started.  Eviction order is fleet submission order, so the
            // re-route sequence is deterministic.
            let evicted = self.regions[region].fleet.evict_pending(at);
            for (fleet_index, _) in evicted {
                let id = self.regions[region].submitted_map[fleet_index];
                self.tracks[id].evictions += 1;
                self.migration_events += 1;
                self.route(id, at);
            }
        }
    }

    /// Fires the earliest pending retry.
    fn apply_retry(&mut self) {
        let (&(at, seq), &id) = self
            .retries
            .iter()
            .next()
            .expect("advance only fires with a pending retry");
        self.retries.remove(&(at, seq));
        self.route(id, at);
    }

    /// Moves `region` to `new` at virtual time `at`, closing the previous
    /// state's ledger interval.
    fn set_health(&mut self, region: usize, new: RegionHealth, at: u64) {
        let state = &mut self.regions[region];
        let old = state.health;
        if old == new {
            return;
        }
        state.state_cycles[old.index()] += at.saturating_sub(state.state_since);
        state.health = new;
        state.state_since = at;
        state.generation += 1;
        if new == RegionHealth::Down {
            state.down_intervals.push((at, None));
        } else if old == RegionHealth::Down {
            if let Some(last @ (_, None)) = state.down_intervals.last_mut() {
                last.1 = Some(at);
            }
        }
    }

    /// Weighted backlog snapshot of `region` (step its fleet to the
    /// decision point first).
    fn weighted_backlog(&self, region: usize) -> u64 {
        self.regions[region]
            .fleet
            .class_backlog_cycles()
            .iter()
            .zip(self.config.class_weights)
            .map(|(&b, w)| b.saturating_mul(w))
            .fold(0, u64::saturating_add)
    }

    /// Routes request `id` at virtual time `at`: pick a routable holder,
    /// shed on overload, defer (or shed) when no holder is routable.
    fn route(&mut self, id: usize, at: u64) {
        let model = self.tracks[id].request.model;
        let class = self.tracks[id].request.slo;
        let candidates: Vec<usize> = self.holders[model]
            .iter()
            .copied()
            .filter(|&r| self.regions[r].health.routable())
            .collect();
        if candidates.is_empty() {
            self.defer_or_shed(id, at);
            return;
        }
        let region = match self.config.route {
            RoutePolicy::ByModel => candidates[model % candidates.len()],
            RoutePolicy::LeastBacklog => {
                let mut best = candidates[0];
                let mut best_pressure = u64::MAX;
                for &candidate in &candidates {
                    // Virtual-time snapshot: judge backlog at the routing
                    // instant, not wherever the fleet last stopped.
                    self.regions[candidate].fleet.run_until(at);
                    let pressure = self.weighted_backlog(candidate);
                    if pressure < best_pressure {
                        best_pressure = pressure;
                        best = candidate;
                    }
                }
                best
            }
        };
        let ceiling = self.config.shed.backlog_ceiling_cycles[class.index()];
        if ceiling != u64::MAX {
            self.regions[region].fleet.run_until(at);
            if self.weighted_backlog(region) > ceiling {
                self.shed(id, ShedReason::Overload);
                return;
            }
        }
        self.submit_to_region(id, region, at);
    }

    /// Hands request `id` to `region`'s fleet.
    fn submit_to_region(&mut self, id: usize, region: usize, at: u64) {
        let track = self.tracks[id];
        let mut request = track.request;
        if track.evictions > 0 || track.attempts > 0 {
            // A migrated or deferred request enters its new region at the
            // re-route instant; the original deadline keeps deadline
            // accounting honest, and the router re-anchors latency to the
            // original arrival when the outcome comes back.
            request.arrival_cycles = at;
        }
        request.model = self.regions[region].local_model[track.request.model]
            .expect("routed to a holder of the model");
        self.regions[region].submitted_map.push(id);
        self.regions[region].fleet.submit(request);
    }

    /// No routable holder: consume a retry attempt and defer with
    /// exponential virtual-time backoff, or shed when the budget is gone.
    fn defer_or_shed(&mut self, id: usize, at: u64) {
        if self.tracks[id].attempts >= self.config.retry.max_attempts {
            self.shed(id, ShedReason::RetryBudgetExhausted);
            return;
        }
        self.tracks[id].attempts += 1;
        let backoff = self.config.retry.backoff_cycles(self.tracks[id].attempts);
        let when = at.saturating_add(backoff);
        self.horizon = self.horizon.max(when);
        self.retries_scheduled += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.retries.insert((when, seq), id);
    }

    /// Sheds request `id` — the graceful-degradation outcome.
    fn shed(&mut self, id: usize, reason: ShedReason) {
        let track = &mut self.tracks[id];
        track.resolved = Some(Resolved::Shed);
        self.shed_by_class[track.request.slo.index()] += 1;
        self.completions.push(GlobalOutcome {
            request: id,
            model: track.request.model,
            slo: track.request.slo,
            status: GlobalStatus::Shed {
                reason,
                attempts: track.attempts,
            },
        });
    }

    /// Pulls every region's streamed outcomes into the global completion
    /// buffer, re-anchoring latency and ids to the global view.
    fn harvest(&mut self) {
        for region in 0..self.regions.len() {
            let outcomes = self.regions[region].fleet.poll_completions();
            for fleet_outcome in outcomes {
                let id = self.regions[region].submitted_map[fleet_outcome.outcome.request];
                let track = &mut self.tracks[id];
                let status = match fleet_outcome.outcome.status {
                    CompletionStatus::Served {
                        finish_cycles,
                        deadline_missed,
                        failed_over,
                        ..
                    } => {
                        let migrated = track.evictions > 0 || track.attempts > 0;
                        track.resolved = Some(Resolved::Served {
                            deadline_missed,
                            migrated,
                        });
                        GlobalStatus::Served {
                            region,
                            latency_cycles: finish_cycles
                                .saturating_sub(track.request.arrival_cycles),
                            deadline_missed,
                            migrated,
                            failed_over,
                        }
                    }
                    CompletionStatus::Rejected {
                        backlog_cycles,
                        backlog_cap_cycles,
                    } => {
                        track.resolved = Some(Resolved::Rejected);
                        GlobalStatus::Rejected {
                            region,
                            backlog_cycles,
                            backlog_cap_cycles,
                        }
                    }
                };
                self.completions.push(GlobalOutcome {
                    request: id,
                    model: track.request.model,
                    slo: track.request.slo,
                    status,
                });
            }
        }
    }
}
