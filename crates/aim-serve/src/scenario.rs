//! The named chaos-scenario catalogue, FoundationDB-simulation style: each
//! scenario is plain data — a traffic shape, a fleet shape and a fault
//! schedule — and running one is a pure function of that data, so whole
//! fleet runs freeze as golden files under
//! `crates/aim-serve/tests/goldens/` and re-verify byte for byte on every
//! checkout, worker count and execution backend.
//!
//! Three scenarios are frozen:
//!
//! * **`steady-state`** — mixed-SLO bursty traffic, no faults, elastic
//!   scaling live: the control run that pins the scaling hysteresis.
//! * **`chip-death-at-peak`** — diurnal-wave traffic with two chips dying
//!   near the first wave crest, while scaling fights the lost capacity:
//!   pins failover (requeue, exactly-once, availability ledger).
//! * **`rolling-degradation`** — a degradation wave sweeping chip to chip
//!   (degrade → recover → next chip), one chip left degraded at drain:
//!   pins the [`ChipHealth`](pim_sim::backend::ChipHealth) derate under
//!   both backends and the fractional capacity-loss accounting.
//!
//! Together the fault plans cover every
//! [`FaultKind`](workloads::inputs::FaultKind) variant — a coverage test
//! keeps that true as variants are added.

use aim_core::pipeline::{AimConfig, CompiledPlan};
use pim_sim::backend::BackendKind;
use workloads::inputs::{
    synthetic_trace, ArrivalShape, FaultEvent, FaultKind, FaultPlan, SloMix, TrafficConfig,
};
use workloads::zoo::Model;

use crate::fleet::{FleetConfig, FleetReport, FleetSession, ScalingConfig, ShardPolicy};
use crate::runtime::{ServeConfig, ServeRuntime};
use crate::scheduler::DispatchPolicy;

/// One frozen chaos scenario: everything a run depends on, as plain data.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Stable scenario name (doubles as the golden file stem).
    pub name: &'static str,
    /// The synthetic traffic the fleet serves.
    pub traffic: TrafficConfig,
    /// Per-shard serving configuration (the backend field is overridden by
    /// [`Self::run`]).
    pub serve: ServeConfig,
    /// Fleet shape: shards, routing, elasticity.
    pub fleet: FleetConfig,
    /// The fault schedule.
    pub faults: FaultPlan,
}

impl ChaosScenario {
    /// Runs the scenario on `plans` under `backend`, submit-all-then-drain.
    #[must_use]
    pub fn run(&self, plans: Vec<CompiledPlan>, backend: BackendKind) -> FleetReport {
        let runtime = ServeRuntime::from_plans(
            plans,
            ServeConfig {
                backend,
                ..self.serve
            },
        );
        let trace = synthetic_trace(&self.traffic);
        FleetSession::serve_trace(&runtime, self.fleet, self.faults.clone(), &trace)
    }
}

/// The plan set every scenario serves: two small MobileNetV2 variants (the
/// same pair the property suites compile), cheap enough for CI yet
/// exercising real mapped batches under both backends.
#[must_use]
pub fn reference_plans() -> Vec<CompiledPlan> {
    let config = AimConfig {
        cycles_per_slice: 40,
        ..AimConfig::baseline()
    };
    vec![
        CompiledPlan::compile(
            &Model::mobilenet_v2(),
            &AimConfig {
                operator_stride: Some(13),
                ..config
            },
        ),
        CompiledPlan::compile(
            &Model::mobilenet_v2(),
            &AimConfig {
                operator_stride: Some(17),
                ..config
            },
        ),
    ]
}

/// Per-shard serving configuration shared by the scenarios.
fn scenario_serve() -> ServeConfig {
    ServeConfig {
        chips: 3,
        max_batch: 4,
        batch_window_cycles: 10_000,
        reload_cycles_per_slice: 32,
        dispatch: DispatchPolicy::LeastLoaded,
        admission: None,
        backend: BackendKind::CycleAccurate,
        audit_chips: 0,
        verify_every: 0,
        parallel: true,
        seed: 0xF1EE7,
    }
}

/// Mixed-SLO traffic shared by the steady-state and degradation scenarios.
fn scenario_traffic(requests: usize, seed: u64) -> TrafficConfig {
    TrafficConfig {
        requests,
        models: 2,
        mean_interarrival_cycles: 1_500.0,
        burst_repeat_prob: 0.55,
        deadline_slack_cycles: 120_000,
        shape: ArrivalShape::BurstyExponential,
        slo_mix: SloMix::Mixed {
            latency_share: 0.2,
            best_effort_share: 0.3,
        },
        seed,
    }
}

/// The frozen scenario catalogue, in golden order.
#[must_use]
pub fn all() -> Vec<ChaosScenario> {
    vec![steady_state(), chip_death_at_peak(), rolling_degradation()]
}

/// Looks a scenario up by name.
#[must_use]
pub fn named(name: &str) -> Option<ChaosScenario> {
    all().into_iter().find(|s| s.name == name)
}

/// Mixed-SLO traffic, no faults, elastic scaling live — the control run.
#[must_use]
pub fn steady_state() -> ChaosScenario {
    ChaosScenario {
        name: "steady-state",
        traffic: TrafficConfig {
            mean_interarrival_cycles: 400.0,
            // One day-night wave: the crest piles backlog onto the single
            // starting worker (scale-up), the trough drains it (scale-down).
            shape: ArrivalShape::DiurnalWave {
                period_cycles: 30_000,
                amplitude: 0.85,
            },
            ..scenario_traffic(96, 0x57EAD)
        },
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::RoundRobin,
            initial_workers: 1,
            scaling: Some(ScalingConfig {
                check_interval_cycles: 5_000,
                scale_up_backlog_cycles: 12_000,
                scale_down_backlog_cycles: 2_000,
                min_workers: 1,
                max_workers: 0,
                class_weights: [1, 2, 4],
            }),
        },
        faults: FaultPlan::none(),
    }
}

/// Two chips die near the first crest of a diurnal wave while scaling
/// fights the lost capacity.
#[must_use]
pub fn chip_death_at_peak() -> ChaosScenario {
    ChaosScenario {
        name: "chip-death-at-peak",
        traffic: TrafficConfig {
            requests: 96,
            models: 2,
            mean_interarrival_cycles: 600.0,
            burst_repeat_prob: 0.55,
            deadline_slack_cycles: 150_000,
            shape: ArrivalShape::DiurnalWave {
                period_cycles: 120_000,
                amplitude: 0.8,
            },
            slo_mix: SloMix::Mixed {
                latency_share: 0.2,
                best_effort_share: 0.3,
            },
            seed: 0xDEAD5,
        },
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::RoundRobin,
            initial_workers: 0,
            scaling: Some(ScalingConfig {
                check_interval_cycles: 10_000,
                scale_up_backlog_cycles: 60_000,
                scale_down_backlog_cycles: 6_000,
                min_workers: 1,
                max_workers: 0,
                class_weights: [1, 2, 4],
            }),
        },
        // The wave crests around a quarter period (~30k cycles): both
        // deaths strike in the thick of it, one per shard.
        faults: FaultPlan::new(vec![
            FaultEvent {
                at_cycles: 25_000,
                kind: FaultKind::ChipDeath { shard: 0, chip: 1 },
            },
            FaultEvent {
                at_cycles: 35_000,
                kind: FaultKind::ChipDeath { shard: 1, chip: 0 },
            },
        ]),
    }
}

/// A degradation wave sweeps chip to chip; the last chip stays degraded
/// through drain so the open-interval capacity accounting is exercised.
#[must_use]
pub fn rolling_degradation() -> ChaosScenario {
    let episode = |at: u64, shard: usize, chip: usize, slowdown_percent: u32| FaultEvent {
        at_cycles: at,
        kind: FaultKind::Degradation {
            shard,
            chip,
            slowdown_percent,
        },
    };
    let recover = |at: u64, shard: usize, chip: usize| FaultEvent {
        at_cycles: at,
        kind: FaultKind::Recovery { shard, chip },
    };
    ChaosScenario {
        name: "rolling-degradation",
        traffic: scenario_traffic(80, 0x0DE64),
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::ByModel,
            initial_workers: 0,
            scaling: None,
        },
        faults: FaultPlan::new(vec![
            episode(15_000, 0, 0, 80),
            recover(45_000, 0, 0),
            episode(45_000, 0, 1, 80),
            recover(75_000, 0, 1),
            episode(60_000, 1, 0, 50),
            recover(90_000, 1, 0),
            // This one never recovers: open at drain.
            episode(90_000, 1, 2, 120),
        ]),
    }
}
