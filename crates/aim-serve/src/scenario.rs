//! The named chaos-scenario catalogue, FoundationDB-simulation style: each
//! scenario is plain data — a traffic shape, a fleet shape and a fault
//! schedule — and running one is a pure function of that data, so whole
//! fleet runs freeze as golden files under
//! `crates/aim-serve/tests/goldens/` and re-verify byte for byte on every
//! checkout, worker count and execution backend.
//!
//! Three scenarios are frozen:
//!
//! * **`steady-state`** — mixed-SLO bursty traffic, no faults, elastic
//!   scaling live: the control run that pins the scaling hysteresis.
//! * **`chip-death-at-peak`** — diurnal-wave traffic with two chips dying
//!   near the first wave crest, while scaling fights the lost capacity:
//!   pins failover (requeue, exactly-once, availability ledger).
//! * **`rolling-degradation`** — a degradation wave sweeping chip to chip
//!   (degrade → recover → next chip), one chip left degraded at drain:
//!   pins the [`ChipHealth`](pim_sim::backend::ChipHealth) derate under
//!   both backends and the fractional capacity-loss accounting.
//!
//! Together the fault plans cover every
//! [`FaultKind`](workloads::inputs::FaultKind) variant — a coverage test
//! keeps that true as variants are added.
//!
//! A second, **multi-region** catalogue ([`global_all`]) freezes whole
//! [`GlobalRouter`] runs the same way — heterogeneous regions (low-power vs
//! sprint silicon), scripted region outages/recoveries/flash crowds — and
//! covers every [`RegionFaultKind`](workloads::inputs::RegionFaultKind)
//! variant:
//!
//! * **`region-outage-at-peak`** — a region dies at the traffic crest and
//!   never returns: pins eviction-migration, and chip-level failover inside
//!   the surviving region.
//! * **`cross-region-failback`** — the sole holder of a model goes down,
//!   its traffic waits in the retry queue with virtual-time backoff, and is
//!   served after recovery: pins the retry budget and failback.
//! * **`flash-crowd`** — a best-effort surge on one model overruns the
//!   shed ceilings: pins the per-class shed order (best-effort first).
//!
//! A third, **DAG** catalogue ([`dag_all`]) freezes whole
//! [`DagOrchestrator`](crate::dag::DagOrchestrator) runs — multi-stage
//! request DAGs multiplexed with point traffic:
//!
//! * **`dag-cascade-chip-death`** — chips die *between the stages* of
//!   in-flight cascades: pins the dependency-driven resubmission, the
//!   orphan-stage shed ledger, and priority inheritance under failover.

use aim_core::booster::BoosterConfig;
use aim_core::pipeline::{AimConfig, CompiledPlan};
use pim_sim::backend::{BackendKind, CalibrationLoopConfig};
use workloads::dag::{session_items, standard_templates, SessionConfig};
use workloads::inputs::{
    synthetic_trace, with_flash_crowds, ArrivalShape, FaultEvent, FaultKind, FaultPlan,
    RegionFaultEvent, RegionFaultKind, RegionFaultPlan, SloMix, TrafficConfig,
};
use workloads::zoo::Model;

use crate::dag::{DagOrchestrator, DagOrchestratorConfig};
use crate::fleet::{FleetConfig, FleetReport, FleetSession, ScalingConfig, ShardPolicy};
use crate::global::{
    GlobalConfig, GlobalReport, GlobalRouter, RegionSpec, RetryConfig, RoutePolicy, ShedPolicy,
};
use crate::runtime::{ServeConfig, ServeRuntime};
use crate::scheduler::DispatchPolicy;

/// One frozen chaos scenario: everything a run depends on, as plain data.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Stable scenario name (doubles as the golden file stem).
    pub name: &'static str,
    /// The synthetic traffic the fleet serves.
    pub traffic: TrafficConfig,
    /// Per-shard serving configuration (the backend field is overridden by
    /// [`Self::run`]).
    pub serve: ServeConfig,
    /// Fleet shape: shards, routing, elasticity.
    pub fleet: FleetConfig,
    /// The fault schedule.
    pub faults: FaultPlan,
}

impl ChaosScenario {
    /// Runs the scenario on `plans` under `backend`, submit-all-then-drain.
    #[must_use]
    pub fn run(&self, plans: Vec<CompiledPlan>, backend: BackendKind) -> FleetReport {
        let runtime = ServeRuntime::from_plans(
            plans,
            ServeConfig {
                backend,
                ..self.serve
            },
        );
        let trace = synthetic_trace(&self.traffic);
        FleetSession::serve_trace(&runtime, self.fleet, self.faults.clone(), &trace)
    }
}

/// The plan set every scenario serves: two small MobileNetV2 variants (the
/// same pair the property suites compile), cheap enough for CI yet
/// exercising real mapped batches under both backends.
#[must_use]
pub fn reference_plans() -> Vec<CompiledPlan> {
    let config = AimConfig {
        cycles_per_slice: 40,
        ..AimConfig::baseline()
    };
    vec![
        CompiledPlan::compile(
            &Model::mobilenet_v2(),
            &AimConfig {
                operator_stride: Some(13),
                ..config
            },
        ),
        CompiledPlan::compile(
            &Model::mobilenet_v2(),
            &AimConfig {
                operator_stride: Some(17),
                ..config
            },
        ),
    ]
}

/// Per-shard serving configuration shared by the scenarios.
fn scenario_serve() -> ServeConfig {
    ServeConfig {
        chips: 3,
        max_batch: 4,
        batch_window_cycles: 10_000,
        reload_cycles_per_slice: 32,
        dispatch: DispatchPolicy::LeastLoaded,
        admission: None,
        backend: BackendKind::CycleAccurate,
        audit_chips: 0,
        verify_every: 0,
        calibration: None,
        parallel: true,
        seed: 0xF1EE7,
        completion_capacity: 0,
    }
}

/// Mixed-SLO traffic shared by the steady-state and degradation scenarios.
fn scenario_traffic(requests: usize, seed: u64) -> TrafficConfig {
    TrafficConfig {
        requests,
        models: 2,
        mean_interarrival_cycles: 1_500.0,
        burst_repeat_prob: 0.55,
        deadline_slack_cycles: 120_000,
        shape: ArrivalShape::BurstyExponential,
        slo_mix: SloMix::Mixed {
            latency_share: 0.2,
            best_effort_share: 0.3,
        },
        seed,
    }
}

/// The frozen scenario catalogue, in golden order.
#[must_use]
pub fn all() -> Vec<ChaosScenario> {
    vec![steady_state(), chip_death_at_peak(), rolling_degradation()]
}

/// Looks a scenario up by name.
#[must_use]
pub fn named(name: &str) -> Option<ChaosScenario> {
    all().into_iter().find(|s| s.name == name)
}

/// Mixed-SLO traffic, no faults, elastic scaling live — the control run.
#[must_use]
pub fn steady_state() -> ChaosScenario {
    ChaosScenario {
        name: "steady-state",
        traffic: TrafficConfig {
            mean_interarrival_cycles: 400.0,
            // One day-night wave: the crest piles backlog onto the single
            // starting worker (scale-up), the trough drains it (scale-down).
            shape: ArrivalShape::DiurnalWave {
                period_cycles: 30_000,
                amplitude: 0.85,
            },
            ..scenario_traffic(96, 0x57EAD)
        },
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::RoundRobin,
            initial_workers: 1,
            scaling: Some(ScalingConfig {
                check_interval_cycles: 5_000,
                scale_up_backlog_cycles: 12_000,
                scale_down_backlog_cycles: 2_000,
                min_workers: 1,
                max_workers: 0,
                class_weights: [1, 2, 4],
            }),
        },
        faults: FaultPlan::none(),
    }
}

/// Two chips die near the first crest of a diurnal wave while scaling
/// fights the lost capacity.
#[must_use]
pub fn chip_death_at_peak() -> ChaosScenario {
    ChaosScenario {
        name: "chip-death-at-peak",
        traffic: TrafficConfig {
            requests: 96,
            models: 2,
            mean_interarrival_cycles: 600.0,
            burst_repeat_prob: 0.55,
            deadline_slack_cycles: 150_000,
            shape: ArrivalShape::DiurnalWave {
                period_cycles: 120_000,
                amplitude: 0.8,
            },
            slo_mix: SloMix::Mixed {
                latency_share: 0.2,
                best_effort_share: 0.3,
            },
            seed: 0xDEAD5,
        },
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::RoundRobin,
            initial_workers: 0,
            scaling: Some(ScalingConfig {
                check_interval_cycles: 10_000,
                scale_up_backlog_cycles: 60_000,
                scale_down_backlog_cycles: 6_000,
                min_workers: 1,
                max_workers: 0,
                class_weights: [1, 2, 4],
            }),
        },
        // The wave crests around a quarter period (~30k cycles): both
        // deaths strike in the thick of it, one per shard.
        faults: FaultPlan::new(vec![
            FaultEvent {
                at_cycles: 25_000,
                kind: FaultKind::ChipDeath { shard: 0, chip: 1 },
            },
            FaultEvent {
                at_cycles: 35_000,
                kind: FaultKind::ChipDeath { shard: 1, chip: 0 },
            },
        ]),
    }
}

/// A degradation wave sweeps chip to chip; the last chip stays degraded
/// through drain so the open-interval capacity accounting is exercised.
///
/// Sampled verification and the online calibration loop are live here (the
/// analytical golden leg pins their stats): degraded chips are exactly where
/// a health-blind verifier would raise false drift alarms, so this golden
/// doubles as the health-aware-calibration pin.
#[must_use]
pub fn rolling_degradation() -> ChaosScenario {
    let episode = |at: u64, shard: usize, chip: usize, slowdown_percent: u32| FaultEvent {
        at_cycles: at,
        kind: FaultKind::Degradation {
            shard,
            chip,
            slowdown_percent,
        },
    };
    let recover = |at: u64, shard: usize, chip: usize| FaultEvent {
        at_cycles: at,
        kind: FaultKind::Recovery { shard, chip },
    };
    ChaosScenario {
        name: "rolling-degradation",
        traffic: scenario_traffic(80, 0x0DE64),
        serve: ServeConfig {
            verify_every: 4,
            calibration: Some(CalibrationLoopConfig::default()),
            ..scenario_serve()
        },
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::ByModel,
            initial_workers: 0,
            scaling: None,
        },
        faults: FaultPlan::new(vec![
            episode(15_000, 0, 0, 80),
            recover(45_000, 0, 0),
            episode(45_000, 0, 1, 80),
            recover(75_000, 0, 1),
            episode(60_000, 1, 0, 50),
            recover(90_000, 1, 0),
            // This one never recovers: open at drain.
            episode(90_000, 1, 2, 120),
        ]),
    }
}

// --- the DAG catalogue -------------------------------------------------------

/// One frozen DAG chaos scenario: a mixed point + DAG session workload, a
/// fleet shape, a fault schedule and the orchestration policy, as plain
/// data.
#[derive(Debug, Clone)]
pub struct DagChaosScenario {
    /// Stable scenario name (doubles as the golden file stem).
    pub name: &'static str,
    /// The session workload: base traffic, user population, DAG share and
    /// the template catalogue.
    pub session: SessionConfig,
    /// Per-shard serving configuration (the backend field is overridden by
    /// [`Self::run`]).
    pub serve: ServeConfig,
    /// Fleet shape.
    pub fleet: FleetConfig,
    /// The chip-fault schedule.
    pub faults: FaultPlan,
    /// Orchestration policy (inheritance, whole-DAG admission).
    pub orchestrator: DagOrchestratorConfig,
}

impl DagChaosScenario {
    /// Runs the scenario on `plans` under `backend`, submit-all-then-drain
    /// through a [`DagOrchestrator`].
    #[must_use]
    pub fn run(&self, plans: Vec<CompiledPlan>, backend: BackendKind) -> FleetReport {
        let runtime = ServeRuntime::from_plans(
            plans,
            ServeConfig {
                backend,
                ..self.serve
            },
        );
        let items = session_items(&self.session);
        let mut orchestrator = DagOrchestrator::new(
            &runtime,
            self.fleet,
            self.faults.clone(),
            self.session.templates.clone(),
            self.orchestrator,
        );
        for item in &items {
            orchestrator.submit_item(item);
        }
        orchestrator.drain()
    }
}

/// The frozen DAG scenario catalogue, in golden order.
#[must_use]
pub fn dag_all() -> Vec<DagChaosScenario> {
    vec![dag_cascade_chip_death()]
}

/// Looks a DAG scenario up by name.
#[must_use]
pub fn dag_named(name: &str) -> Option<DagChaosScenario> {
    dag_all().into_iter().find(|s| s.name == name)
}

/// Chips die between the stages of in-flight cascades: upstream stages
/// served before the death, downstream stages submitted into the degraded
/// fleet — failover, orphan-stage sheds and inheritance all live at once.
#[must_use]
pub fn dag_cascade_chip_death() -> DagChaosScenario {
    DagChaosScenario {
        name: "dag-cascade-chip-death",
        session: SessionConfig {
            traffic: TrafficConfig {
                mean_interarrival_cycles: 300.0,
                ..scenario_traffic(96, 0xDA6C)
            },
            users: 6,
            dag_share: 0.5,
            templates: standard_templates(2),
            dag_deadline_slack_cycles: 500_000,
        },
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards: 2,
            shard_policy: ShardPolicy::RoundRobin,
            initial_workers: 0,
            scaling: None,
        },
        // Deaths land while early cascade stages have completed and their
        // children are queued or mid-think-gap: one per shard, spread so
        // each catches different pipelines mid-flight.
        faults: FaultPlan::new(vec![
            FaultEvent {
                at_cycles: 8_000,
                kind: FaultKind::ChipDeath { shard: 0, chip: 1 },
            },
            FaultEvent {
                at_cycles: 25_000,
                kind: FaultKind::ChipDeath { shard: 1, chip: 2 },
            },
        ]),
        orchestrator: DagOrchestratorConfig {
            inherit_priority: true,
            admission: None,
        },
    }
}

// --- the multi-region catalogue --------------------------------------------

/// Hardware flavour of one region — the zoo × config matrix from the
/// backend-fidelity suite, reduced to the two booster operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RegionHardware {
    /// Low-power booster silicon (cheap, slower sprint levels).
    LowPower,
    /// Sprint booster silicon (faster aggressive levels).
    Sprint,
}

/// One region of a frozen global scenario, as plain data.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GlobalScenarioRegion {
    /// Region name (carried into the report).
    pub name: &'static str,
    /// Which silicon the region runs.
    pub hardware: RegionHardware,
    /// Per-shard serving configuration (backend overridden by
    /// [`GlobalScenario::run`]).
    pub serve: ServeConfig,
    /// The region's fleet shape.
    pub fleet: FleetConfig,
    /// Chip-level faults striking inside the region.
    pub faults: FaultPlan,
    /// Global models resident in the region.
    pub models: Vec<usize>,
}

/// One frozen multi-region chaos scenario: everything a run depends on.
#[derive(Debug, Clone)]
pub struct GlobalScenario {
    /// Stable scenario name (doubles as the golden file stem).
    pub name: &'static str,
    /// The base traffic; flash-crowd events in `region_faults` amplify it
    /// deterministically before submission.
    pub traffic: TrafficConfig,
    /// Size of the global model catalogue.
    pub models: usize,
    /// The regions, in region order.
    pub regions: Vec<GlobalScenarioRegion>,
    /// Routing, retry, shed and health-timer policy.
    pub global: GlobalConfig,
    /// The scripted region-fault schedule.
    pub region_faults: RegionFaultPlan,
}

impl GlobalScenario {
    /// Runs the scenario under `backend`, submit-all-then-drain.
    #[must_use]
    pub fn run(&self, backend: BackendKind) -> GlobalReport {
        let runtimes: Vec<ServeRuntime> = self
            .regions
            .iter()
            .map(|region| {
                let menu = global_reference_plans(region.hardware);
                let plans = region.models.iter().map(|&m| menu[m].clone()).collect();
                ServeRuntime::from_plans(
                    plans,
                    ServeConfig {
                        backend,
                        ..region.serve
                    },
                )
            })
            .collect();
        let specs = self
            .regions
            .iter()
            .zip(&runtimes)
            .map(|(region, runtime)| RegionSpec {
                name: region.name.to_string(),
                runtime,
                fleet: region.fleet,
                faults: region.faults.clone(),
                models: region.models.clone(),
            })
            .collect();
        let base = synthetic_trace(&self.traffic);
        let trace = with_flash_crowds(
            &base,
            &self.region_faults,
            self.traffic.deadline_slack_cycles,
            self.traffic.seed,
        );
        GlobalRouter::serve_trace(
            specs,
            self.models,
            self.global,
            self.region_faults.clone(),
            &trace,
        )
    }
}

/// The per-hardware plan menu of the global scenarios: the same two
/// MobileNetV2 variants as [`reference_plans`], compiled against the
/// region's booster silicon — so model `m` means the same network
/// everywhere but runs on different chips per region.
#[must_use]
pub fn global_reference_plans(hardware: RegionHardware) -> Vec<CompiledPlan> {
    let booster = match hardware {
        RegionHardware::LowPower => BoosterConfig::low_power(),
        RegionHardware::Sprint => BoosterConfig::sprint(),
    };
    let config = AimConfig {
        cycles_per_slice: 40,
        mode: booster.mode,
        booster: Some(booster),
        ..AimConfig::baseline()
    };
    vec![
        CompiledPlan::compile(
            &Model::mobilenet_v2(),
            &AimConfig {
                operator_stride: Some(13),
                ..config
            },
        ),
        CompiledPlan::compile(
            &Model::mobilenet_v2(),
            &AimConfig {
                operator_stride: Some(17),
                ..config
            },
        ),
    ]
}

/// Region building block shared by the global scenarios.
fn scenario_region(
    name: &'static str,
    hardware: RegionHardware,
    shards: usize,
    models: Vec<usize>,
) -> GlobalScenarioRegion {
    GlobalScenarioRegion {
        name,
        hardware,
        serve: scenario_serve(),
        fleet: FleetConfig {
            shards,
            shard_policy: ShardPolicy::RoundRobin,
            initial_workers: 0,
            scaling: None,
        },
        faults: FaultPlan::none(),
        models,
    }
}

/// The frozen multi-region catalogue, in golden order.
#[must_use]
pub fn global_all() -> Vec<GlobalScenario> {
    vec![
        region_outage_at_peak(),
        cross_region_failback(),
        flash_crowd(),
    ]
}

/// Looks a global scenario up by name.
#[must_use]
pub fn global_named(name: &str) -> Option<GlobalScenario> {
    global_all().into_iter().find(|s| s.name == name)
}

/// A low-power region dies at the traffic crest and never returns: every
/// committed-but-not-started request migrates to the sprint region, which
/// then loses a chip of its own mid-absorption (failover under migration
/// pressure).
#[must_use]
pub fn region_outage_at_peak() -> GlobalScenario {
    let mut survivor = scenario_region("sprint-east", RegionHardware::Sprint, 2, vec![0, 1]);
    // The surviving region loses a chip while absorbing the migrated load.
    survivor.faults = FaultPlan::new(vec![FaultEvent {
        at_cycles: 25_000,
        kind: FaultKind::ChipDeath { shard: 0, chip: 2 },
    }]);
    GlobalScenario {
        name: "region-outage-at-peak",
        traffic: TrafficConfig {
            requests: 96,
            models: 2,
            mean_interarrival_cycles: 350.0,
            burst_repeat_prob: 0.55,
            deadline_slack_cycles: 10_000,
            shape: ArrivalShape::DiurnalWave {
                period_cycles: 120_000,
                amplitude: 0.8,
            },
            slo_mix: SloMix::Mixed {
                latency_share: 0.2,
                best_effort_share: 0.3,
            },
            seed: 0x6E0_0D1E,
        },
        models: 2,
        regions: vec![
            scenario_region("lowpower-west", RegionHardware::LowPower, 2, vec![0, 1]),
            survivor,
        ],
        global: GlobalConfig {
            route: RoutePolicy::ByModel,
            suspect_grace_cycles: 2_000,
            ..GlobalConfig::default()
        },
        // Arrivals crest early at this density: the outage lands in the
        // thick of the backlog and the region stays dark.
        region_faults: RegionFaultPlan::new(vec![RegionFaultEvent {
            at_cycles: 15_000,
            kind: RegionFaultKind::RegionOutage { region: 0 },
        }]),
    }
}

/// The sole holder of model 1 goes down mid-run and comes back: its
/// traffic waits in the retry queue under exponential virtual-time backoff
/// and fails back after recovery — drain-don't-strand end to end.
#[must_use]
pub fn cross_region_failback() -> GlobalScenario {
    GlobalScenario {
        name: "cross-region-failback",
        traffic: TrafficConfig {
            requests: 80,
            models: 2,
            mean_interarrival_cycles: 1_500.0,
            burst_repeat_prob: 0.55,
            deadline_slack_cycles: 90_000,
            shape: ArrivalShape::BurstyExponential,
            slo_mix: SloMix::Mixed {
                latency_share: 0.2,
                best_effort_share: 0.3,
            },
            seed: 0x0FA1_1BAC,
        },
        models: 2,
        regions: vec![
            scenario_region("lowpower-west", RegionHardware::LowPower, 2, vec![0]),
            scenario_region("sprint-east", RegionHardware::Sprint, 1, vec![0, 1]),
        ],
        global: GlobalConfig {
            route: RoutePolicy::ByModel,
            retry: RetryConfig {
                max_attempts: 4,
                backoff_base_cycles: 15_000,
                backoff_multiplier: 2,
            },
            suspect_grace_cycles: 2_000,
            recovery_warmup_cycles: 10_000,
            ..GlobalConfig::default()
        },
        region_faults: RegionFaultPlan::new(vec![
            RegionFaultEvent {
                at_cycles: 20_000,
                kind: RegionFaultKind::RegionOutage { region: 1 },
            },
            RegionFaultEvent {
                at_cycles: 80_000,
                kind: RegionFaultKind::RegionRecovery { region: 1 },
            },
        ]),
    }
}

/// A best-effort flash crowd on one model overruns the shed ceilings:
/// best-effort traffic sheds first while latency-sensitive traffic rides
/// out the surge — the graceful-degradation pin.
#[must_use]
pub fn flash_crowd() -> GlobalScenario {
    GlobalScenario {
        name: "flash-crowd",
        traffic: TrafficConfig {
            requests: 64,
            models: 2,
            mean_interarrival_cycles: 1_800.0,
            burst_repeat_prob: 0.55,
            deadline_slack_cycles: 200_000,
            shape: ArrivalShape::BurstyExponential,
            slo_mix: SloMix::Mixed {
                latency_share: 0.25,
                best_effort_share: 0.25,
            },
            seed: 0xF1A5_C0DE,
        },
        models: 2,
        regions: vec![
            scenario_region("lowpower-west", RegionHardware::LowPower, 1, vec![0, 1]),
            scenario_region("sprint-east", RegionHardware::Sprint, 1, vec![0, 1]),
        ],
        global: GlobalConfig {
            route: RoutePolicy::LeastBacklog,
            shed: ShedPolicy {
                // Best-effort sheds once weighted backlog passes ~8k
                // cycles; standard holds to 600k; latency-sensitive never
                // sheds.
                backlog_ceiling_cycles: [8_000, 600_000, u64::MAX],
            },
            ..GlobalConfig::default()
        },
        region_faults: RegionFaultPlan::new(vec![RegionFaultEvent {
            at_cycles: 40_000,
            kind: RegionFaultKind::FlashCrowd {
                model: 0,
                requests: 96,
                mean_gap_cycles: 40,
            },
        }]),
    }
}
