//! # aim-serve — online multi-chip serving over the AIM pipeline
//!
//! The paper's evaluation runs one model end-to-end on one simulated chip;
//! this crate amortises that fast core across heavy concurrent traffic.  A
//! [`ServeRuntime`] owns one [`aim_core::pipeline::CompiledPlan`] per served
//! model (the compile-once half of the pipeline: QAT ± LHR, WDS,
//! segmentation and task-to-macro mapping) and a fleet of simulated chips.
//! Traffic enters through an **event-driven [`session::ServeSession`]** —
//! the crate's front door:
//!
//! ```no_run
//! use aim_serve::prelude::*;
//! # fn traffic() -> Vec<TraceRequest> { Vec::new() }
//! # fn runtime() -> ServeRuntime { unimplemented!() }
//!
//! let runtime = runtime();
//! let mut session = runtime.session();
//! for request in traffic() {
//!     session.submit(request);                  // arrivals, one at a time
//!     session.run_until(request.arrival_cycles); // step virtual time
//!     for done in session.poll_completions() {   // stream outcomes
//!         println!("request {} -> {:?}", done.request, done.status);
//!     }
//! }
//! let report = session.drain();                  // final ServeReport
//! ```
//!
//! 1. **Online batching** — each model holds one open batch; a request
//!    joins its model's batch when it arrives within the batching window
//!    (up to `max_batch`), so *interleaved* multi-model traffic batches
//!    correctly — unlike the offline [`scheduler::form_groups`] scan, which
//!    only coalesces consecutive same-model requests and survives as the
//!    documented baseline.  A batch closes on window expiry, on filling up,
//!    or the moment a latency-sensitive request joins it.
//! 2. **SLO classes** ([`workloads::inputs::SloClass`] on every
//!    [`workloads::inputs::TraceRequest`]) — `LatencySensitive` arrivals
//!    close batch windows early and jump queued lower-class groups that
//!    have not started; `BestEffort` rides at the back of the queue.
//!    Admission control ([`scheduler::AdmissionConfig`]) holds each class
//!    to its own backlog cap and bounces the rest.
//! 3. **Deterministic dispatch** — groups pick chips (round-robin or
//!    least-loaded) on the shared pre-execution [`scheduler::CostModel`];
//!    scheduling never reads measured execution, which is what lets chip
//!    workers fan out on rayon scoped threads while reports stay
//!    byte-identical.  Fleets choose their execution backend
//!    ([`runtime::ServeConfig::backend`]): cycle-accurate chips run the
//!    per-cycle engine through reusable [`pim_sim::chip::SimSession`]s,
//!    analytical chips hand out their plan's calibrated closed-form
//!    prediction ([`aim_core::analytical::AnalyticalPlan`]), audit chips
//!    ([`runtime::ServeConfig::audit_chips`]) and sampled verification
//!    ([`runtime::ServeConfig::verify_every`]) keep ground truth flowing.
//! 4. **Streaming reports** — [`session::ServeSession::poll_completions`]
//!    yields per-request [`session::RequestOutcome`]s as groups retire;
//!    the final [`report::ServeReport`] (latency percentiles overall and
//!    per SLO class, per-chip utilization, deadline misses, power/droop,
//!    verification drift) is frozen from an incremental
//!    [`report::ReportAccumulator`], which also
//!    [`merge`](report::ReportAccumulator::merge)s across sharded sessions.
//!
//! The offline entry point survives as a thin wrapper:
//! [`runtime::ServeRuntime::serve`] feeds the whole trace into a fresh
//! session and drains it, so both paths share one scheduler.
//!
//! Above the single session sits the **fault-tolerant elastic fleet**
//! ([`fleet::FleetSession`]): requests shard across multiple sessions,
//! chips die and degrade at scripted virtual-time points
//! ([`workloads::inputs::FaultPlan`]), not-yet-started work fails over to
//! survivors, worker counts follow per-class backlog pressure with
//! hysteresis ([`fleet::ScalingConfig`]), and the final
//! [`fleet::FleetReport`] merges shard accumulators and adds availability
//! metrics.  The [`scenario`] module freezes named chaos scenarios as
//! golden files.
//!
//! Above the fleet sits **multi-region orchestration**
//! ([`global::GlobalRouter`]): N heterogeneous fleet regions (different
//! silicon per region), explicit model placement/replication, deterministic
//! routing, a per-region health state machine driven by scripted
//! [`workloads::inputs::RegionFaultPlan`]s, migration of not-yet-started
//! work off dead regions under a bounded retry budget with virtual-time
//! backoff, and graceful degradation that sheds best-effort traffic first.
//!
//! ## Determinism contract
//!
//! Everything the scheduler decides is derived from the submission
//! sequence, the serve seed and pre-execution cost estimates — never from
//! wall-clock time, thread interleaving, or measured execution.  A fixed
//! `(trace, ServeConfig)` therefore produces a byte-identical
//! [`report::ServeReport`] run over run, **independent of the worker-thread
//! count** and of how `run_until`/`poll_completions` calls interleave with
//! submissions: `serve(&trace)`, submit-all-then-drain, and incremental
//! stepping all return the same bytes.  `tests/properties.rs` and
//! `tests/session_api.rs` pin this along with the no-request-lost,
//! conservation and SLO-priority invariants.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dag;
pub mod fleet;
pub mod global;
pub mod report;
pub mod runtime;
pub mod scenario;
pub mod scheduler;
pub mod session;

pub use dag::{DagOrchestrator, DagOrchestratorConfig, StageOutcome, StageStatus};
pub use fleet::{
    AvailabilityStats, ClassAttainment, FleetConfig, FleetOutcome, FleetReport, FleetSession,
    ScalingConfig, ShardPolicy,
};
pub use global::{
    place_models, GlobalAvailability, GlobalConfig, GlobalOutcome, GlobalReport, GlobalRouter,
    GlobalStatus, GlobalSummary, PlacementStats, RegionHealth, RegionReport, RegionSpec,
    RetryConfig, RetryConfigBuilder, RoutePolicy, ShedPolicy, ShedReason,
};
pub use report::{
    CalibrationStats, ChipServeStats, ClassServeStats, DagClassStats, DagServeStats, LatencySketch,
    ModelCalibration, ReportAccumulator, ServeReport, VerificationStats,
};
pub use runtime::{ServeConfig, ServeConfigBuilder, ServeRuntime};
pub use scheduler::{AdmissionConfig, DispatchPolicy, RequestGroup};
pub use session::{CompletionStatus, RequestOutcome, ServeSession};

/// One-stop imports for serving code: the runtime, session, fleet layer,
/// config builder, report types, and the workload-side request/SLO/fault
/// vocabulary.
pub mod prelude {
    pub use crate::dag::{DagOrchestrator, DagOrchestratorConfig, StageOutcome, StageStatus};
    pub use crate::fleet::{
        AvailabilityStats, ClassAttainment, FleetConfig, FleetOutcome, FleetReport, FleetSession,
        ScalingConfig, ShardPolicy,
    };
    pub use crate::global::{
        place_models, GlobalAvailability, GlobalConfig, GlobalOutcome, GlobalReport, GlobalRouter,
        GlobalStatus, GlobalSummary, PlacementStats, RegionHealth, RegionReport, RegionSpec,
        RetryConfig, RetryConfigBuilder, RoutePolicy, ShedPolicy, ShedReason,
    };
    pub use crate::report::{
        CalibrationStats, ChipServeStats, ClassServeStats, DagClassStats, DagServeStats,
        LatencySketch, ModelCalibration, ReportAccumulator, ServeReport, VerificationStats,
    };
    pub use crate::runtime::{ServeConfig, ServeConfigBuilder, ServeRuntime};
    pub use crate::scheduler::{AdmissionConfig, CostModel, DispatchPolicy, RequestGroup};
    pub use crate::session::{CompletionStatus, RequestOutcome, ServeSession};
    pub use pim_sim::backend::{BackendKind, CalibrationLoopConfig, ChipHealth};
    pub use workloads::dag::{
        standard_templates, DagRequest, DagStage, DagTemplate, SessionConfig, SessionItem,
        SessionItemKind, SessionStream,
    };
    pub use workloads::inputs::{
        chaos_fault_plan, region_chaos_plan, with_flash_crowds, ChaosConfig, FaultEvent, FaultKind,
        FaultPlan, RegionChaosConfig, RegionFaultEvent, RegionFaultKind, RegionFaultPlan, SloClass,
        TraceRequest,
    };
}
