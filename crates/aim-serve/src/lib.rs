//! # aim-serve — multi-chip serving runtime over the AIM pipeline
//!
//! The paper's evaluation runs one model end-to-end on one simulated chip;
//! this crate amortises that fast core across heavy concurrent traffic.  A
//! [`ServeRuntime`] owns one [`aim_core::pipeline::CompiledPlan`] per served
//! model (the compile-once half of the pipeline: QAT ± LHR, WDS, segmentation
//! and task-to-macro mapping) and a fleet of simulated chips, and replays a
//! request trace through them:
//!
//! 1. **Dynamic batching** ([`scheduler::form_groups`]) — consecutive
//!    same-model requests arriving within a batching window coalesce into one
//!    group, up to `max_batch`.  A group streams its inputs through macros
//!    already loaded with the model's weights, so batching amortises the
//!    weight-reload cost a model switch charges.
//! 2. **Dispatch + admission control** ([`scheduler::dispatch`]) — groups go
//!    to chips round-robin or least-loaded, using the plan's deterministic
//!    compile-time cycle estimate; a configurable backlog cap rejects work
//!    that would queue too deep.
//! 3. **Execution** — each chip worker runs on a rayon scoped thread, pulling
//!    its assigned groups in dispatch order and executing them through one
//!    reusable [`pim_sim::chip::SimSession`] (the allocation-free serving hot
//!    path).  Fleets choose their execution backend
//!    ([`runtime::ServeConfig::backend`]): cycle-accurate chips run the
//!    per-cycle engine, analytical chips hand out their plan's calibrated
//!    closed-form prediction ([`aim_core::analytical::AnalyticalPlan`],
//!    replay-invariant, so each replay costs ~nothing).  Heterogeneous
//!    fleets keep [`runtime::ServeConfig::audit_chips`] on the
//!    cycle-accurate engine, and sampled verification
//!    ([`runtime::ServeConfig::verify_every`]) replays every Nth analytical
//!    group cycle-accurately, reporting drift vs the calibrated error bound
//!    in [`report::VerificationStats`].  Admission control quotes the same
//!    analytical cost source the analytical chips execute with.
//! 4. **Accounting** ([`scheduler::timeline`], [`report::ServeReport`]) —
//!    virtual-time start/finish per group, per-request latency percentiles
//!    (p50/p95/p99), per-chip utilization, deadline misses, power and droop.
//!
//! ## Determinism contract
//!
//! Everything the scheduler decides is derived from the trace, the serve
//! seed and compile-time estimates — never from wall-clock time or thread
//! interleaving.  A fixed `(trace, ServeConfig)` therefore produces a
//! byte-identical [`report::ServeReport`] run over run, **independent of the
//! worker-thread count**: `parallel: false` (one worker) and the full rayon
//! fan-out return the same bytes.  `tests/properties.rs` pins this along
//! with the no-request-lost and conservation invariants.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod runtime;
pub mod scheduler;

pub use report::{ChipServeStats, ServeReport, VerificationStats};
pub use runtime::{ServeConfig, ServeRuntime};
pub use scheduler::{AdmissionConfig, DispatchPolicy, RequestGroup};
