//! The event-driven online serving session.
//!
//! [`ServeSession`] is the crate's front door for traffic that arrives over
//! time: [`submit`] accepts one request at the session's virtual "now",
//! [`run_until`] steps the event loop (batch-window closures, dispatch,
//! chip execution) up to a target cycle, [`poll_completions`] streams
//! per-request outcomes as their groups retire, and [`drain`] flushes
//! everything and freezes the final [`ServeReport`].  The offline
//! [`ServeRuntime::serve`] is a thin wrapper: submit the whole trace, then
//! drain.
//!
//! ## The online batcher
//!
//! Each model owns one *open batch*.  A request joins its model's open batch
//! when it arrives within the batching window of the batch's first member
//! (and the batch has room); otherwise it opens a new batch whose window
//! closure is queued as an event.  Because pending batches are **per
//! model**, interleaved traffic (`A,B,A,B,…`) batches correctly — the
//! offline [`form_groups`] scan, which only coalesces *consecutive*
//! same-model requests, never batches that trace at all.
//!
//! A batch closes (becomes a [`RequestGroup`] and dispatches) when the first
//! of these happens: its window expires, it reaches `max_batch`, or a
//! [`SloClass::LatencySensitive`] request joins it — latency-sensitive
//! arrivals close the window early and carry the whole batch with them.
//!
//! ## Priority-aware dispatch
//!
//! A closed group picks a chip (round-robin or least-loaded over estimated
//! availability) and is inserted into the chip's queue: it may **jump ahead
//! of queued lower-class groups that have not started yet** (by the
//! estimated schedule), but never ahead of work already underway or of
//! equal/higher-class groups.  Admission control compares the group's
//! estimated queueing delay against its class's cap
//! ([`AdmissionConfig::cap_for`]) and bounces the whole group when it is
//! exceeded; rejected requests surface immediately through
//! [`poll_completions`].
//!
//! ## Determinism and worker-count independence
//!
//! Every *scheduling* decision (batch membership, chip choice, queue
//! position, admission) derives from arrival times and the pre-execution
//! [`CostModel`] — never from measured execution.  Chip execution therefore
//! fans out across worker threads freely: each group's replay is seeded by
//! its commit index, per-chip results are recombined in chip order, and the
//! measured timeline is chained per chip in queue order.  A fixed submission
//! sequence produces a byte-identical [`ServeReport`] regardless of
//! `parallel`, of the worker-thread count, and of how the caller interleaves
//! `run_until`/`poll_completions` between submissions.
//!
//! ## Faults and elasticity
//!
//! Three hooks let a fleet layer (see [`crate::fleet`]) reshape a running
//! session at deterministic virtual-time points: [`kill_chip`] marks a chip
//! dead and fails its not-yet-started queue over to the survivors (the
//! executed prefix — judged by the *estimated* schedule, the same rule
//! priority insertion uses — stays immutable), [`set_chip_health`] applies a
//! [`ChipHealth`] derate that stretches both estimated and measured service
//! cycles from that point on, and [`set_worker_count`] grows or shrinks the
//! dispatch-eligible worker set (deactivated chips drain).  All three step
//! the session to the change point first, so their effect is a pure function
//! of the submission/fault sequence — never of how the caller interleaved
//! `run_until` — and the determinism contract below survives chaos
//! scenarios unchanged.
//!
//! ## The online calibration loop
//!
//! With [`ServeConfig::calibration`] set (and analytical chips present),
//! drift samples — sampled verification, audit-chip replays, demoted-model
//! executions — feed a per-model EWMA of *signed* relative cycle residuals,
//! absorbed strictly in commit order.  Recalibration points are virtual-time
//! events: [`run_until`] internally sub-steps at every boundary (multiples
//! of the configured interval), so recalibrating, demoting and promoting
//! happen at canonical times — a pure function of the submission/fault
//! sequence, never of stepping granularity, worker count, shard layout or
//! polling order, the same discipline window closures follow.  Demotion
//! never touches the estimated schedule (estimate purity): a demoted
//! model's groups still schedule from the shared cost model; only their
//! *measured* execution switches to the cycle-accurate engine, and each
//! such execution is a free drift sample feeding the promotion streak.
//! Verification drift is health-aware: both sides of every sample are
//! derated by the slot's stamped [`ChipHealth`], so a degraded chip
//! measures its prediction error, not its derate.
//!
//! [`ServeConfig::calibration`]: crate::runtime::ServeConfig::calibration
//!
//! ## Bounded memory
//!
//! Session memory is proportional to *in-flight* work, never to the total
//! traffic absorbed.  Request state lives inside its open batch and then
//! its group record; executed chip-queue slots are popped as they retire,
//! and resolved group records are absorbed into the session's
//! [`ReportAccumulator`] — itself fixed-size — **in commit order** and
//! dropped.  (The strict commit-order absorption is what keeps the report
//! byte-identical no matter when groups happened to retire.)  The only
//! per-request state that can outlive its group is the unpolled
//! [`RequestOutcome`] stream, and `ServeConfig::completion_capacity` bounds
//! that too — report-only callers that never poll hold a fixed window, with
//! the overflow counted by [`Self::completions_dropped`].
//!
//! [`submit`]: ServeSession::submit
//! [`run_until`]: ServeSession::run_until
//! [`poll_completions`]: ServeSession::poll_completions
//! [`drain`]: ServeSession::drain
//! [`kill_chip`]: ServeSession::kill_chip
//! [`set_chip_health`]: ServeSession::set_chip_health
//! [`set_worker_count`]: ServeSession::set_worker_count
//! [`form_groups`]: crate::scheduler::form_groups
//! [`RequestGroup`]: crate::scheduler::RequestGroup
//! [`AdmissionConfig::cap_for`]: crate::scheduler::AdmissionConfig::cap_for
//! [`ServeConfig::completion_capacity`]: crate::runtime::ServeConfig::completion_capacity

use std::collections::{BTreeMap, VecDeque};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use aim_core::pipeline::PlanExecution;
use pim_sim::backend::{BackendKind, CalibrationLoopConfig, ChipHealth};
use pim_sim::chip::SimSession;
use workloads::inputs::{SloClass, TraceRequest};

use crate::report::{ModelCalibration, ReportAccumulator, ServeReport};
use crate::runtime::ServeRuntime;
use crate::scheduler::{group_service_cycles, CostModel, DispatchPolicy};

/// How one submitted request left the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompletionStatus {
    /// The request's group executed to completion.
    Served {
        /// Chip the group ran on.
        chip: usize,
        /// Commit index of the group (the session's group id).
        group: usize,
        /// Requests the group batched together.
        batch_size: usize,
        /// Measured cycle the chip began the group (reload included).
        start_cycles: u64,
        /// Measured cycle the group's last request completed.
        finish_cycles: u64,
        /// `finish - arrival` for this request.
        latency_cycles: u64,
        /// Whether the request finished past its deadline.
        deadline_missed: bool,
        /// Whether the request's group was requeued off a dead chip before
        /// executing ([`ServeSession::kill_chip`]) — "failed over and
        /// served".
        failed_over: bool,
    },
    /// Admission control bounced the request's group.
    Rejected {
        /// Estimated queueing delay the group faced (cycles).
        backlog_cycles: u64,
        /// The class cap it exceeded (cycles).
        backlog_cap_cycles: u64,
    },
}

/// One streamed per-request outcome, yielded by
/// [`ServeSession::poll_completions`] as groups retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request's external id: its submission index for
    /// [`ServeSession::submit`], or whatever the caller passed to
    /// [`ServeSession::submit_with_id`].
    pub request: usize,
    /// Model the request targeted.
    pub model: usize,
    /// SLO class the request was served under.
    pub slo: SloClass,
    /// How the request left the session.
    pub status: CompletionStatus,
}

/// A model's open (not yet dispatched) batch, owning its members' request
/// state as `(external id, request)` pairs.
#[derive(Debug, Clone)]
struct OpenBatch {
    requests: Vec<(usize, TraceRequest)>,
    last_arrival: u64,
    close_at: u64,
    class: SloClass,
    generation: u64,
}

/// One committed group in a chip's queue, with its estimated schedule.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gid: usize,
    model: usize,
    class: SloClass,
    batch: usize,
    ready: u64,
    est_start: u64,
    est_finish: u64,
    verify: bool,
    /// Chip health in effect at the slot's estimated start — resolved by
    /// [`ChipLane::recompute_est`], applied to both the estimated and the
    /// measured service time (so scheduling and execution stay consistent).
    health: ChipHealth,
}

/// One measured drift observation: the analytical prediction versus a
/// cycle-accurate replay of the same group, both derated by the slot's
/// stamped [`ChipHealth`] — service-level cycles on both sides, so a
/// degraded chip measures calibration error, not its own derate.
#[derive(Debug, Clone, Copy)]
struct DriftSample {
    /// Health-derated predicted execution cycles (online recalibration
    /// multiplier applied).
    predicted: u64,
    /// Health-derated measured cycle-accurate execution cycles.
    accurate: u64,
    /// Whether the sample counts toward the sampled-verification stats
    /// (audit-chip and demotion-only samples feed just the loop).
    verify: bool,
}

/// Measured outcome of one executed group.
#[derive(Debug, Clone, Copy)]
struct ExecDone {
    chip: usize,
    start: u64,
    finish: u64,
    exec: PlanExecution,
    /// The group's drift observation, when one was measured.
    drift: Option<DriftSample>,
}

/// Everything the session knows about one committed group, including its
/// members' request state — dropped wholesale once the group is absorbed
/// into the report accumulator.
#[derive(Debug, Clone)]
struct GroupRecord {
    model: usize,
    requests: Vec<(usize, TraceRequest)>,
    /// `None` when admission control rejected the group.
    chip: Option<usize>,
    done: Option<ExecDone>,
    /// Whether the group was requeued off a dead chip before starting.
    failed_over: bool,
    /// Whether the group was evicted before starting ([`ServeSession::
    /// evict_pending`]); evicted groups leave the session's accounting
    /// entirely — their requests are someone else's to serve.
    evicted: bool,
}

/// Per-model state of the online calibration loop
/// ([`ServeConfig::calibration`]): the EWMA of signed relative residuals
/// since the last recalibration, the multiplier recalibration has folded
/// onto the fitted cycle prediction, the demotion state machine, and the
/// counters the report surfaces.
///
/// [`ServeConfig::calibration`]: crate::runtime::ServeConfig::calibration
#[derive(Debug, Clone, Copy)]
struct ModelLoopState {
    /// Online multiplier on the fitted cycle prediction (1.0 untouched).
    adjust: f64,
    /// EWMA of signed relative residuals `(accurate - predicted) /
    /// predicted` since the last recalibration.
    ewma: f64,
    /// Worst |EWMA| the model ever reached.
    max_abs_ewma: f64,
    samples: u64,
    /// Samples absorbed since the last applied recalibration; a boundary
    /// with zero fresh samples is a no-op (which is what keeps stale
    /// boundaries from perturbing byte-stability).
    samples_since_recal: u64,
    out_streak: u32,
    in_streak: u32,
    /// Whether the model currently executes cycle-accurately on analytical
    /// lanes.
    demoted: bool,
    recalibrations: u64,
    demotions: u64,
    promotions: u64,
}

impl ModelLoopState {
    const fn new() -> Self {
        Self {
            adjust: 1.0,
            ewma: 0.0,
            max_abs_ewma: 0.0,
            samples: 0,
            samples_since_recal: 0,
            out_streak: 0,
            in_streak: 0,
            demoted: false,
            recalibrations: 0,
            demotions: 0,
            promotions: 0,
        }
    }
}

/// Caps on the online cycle-prediction multiplier: recalibration follows
/// the measured residuals but never walks the prediction into a degenerate
/// regime (a collapsed or exploded scale would poison every later sample).
const MIN_CYCLE_ADJUST: f64 = 0.05;
const MAX_CYCLE_ADJUST: f64 = 20.0;

/// Chip health in effect at virtual time `at`: the latest registered change
/// not after `at`, healthy before the first change.
fn health_at(changes: &[(u64, ChipHealth)], at: u64) -> ChipHealth {
    changes
        .iter()
        .rev()
        .find(|&&(t, _)| t <= at)
        .map_or(ChipHealth::Healthy, |&(_, h)| h)
}

/// Per-chip queue plus the chip's execution state.  `slots` holds only
/// *pending* work: an executed slot is popped at harvest, its estimated
/// finish/model chained into `est_prev_*` so later estimates see the same
/// predecessor they would have with the full history retained.
#[derive(Debug)]
struct ChipLane {
    chip: usize,
    backend: BackendKind,
    slots: VecDeque<Slot>,
    /// Estimated finish of the last retired slot (0 before any retired).
    est_prev_finish: u64,
    /// Model of the last retired slot, for the reload-on-switch charge.
    est_prev_model: Option<usize>,
    /// Measured finish of the last executed slot.
    actual_free: u64,
    actual_last_model: Option<usize>,
    /// `false` once the chip died ([`ServeSession::kill_chip`]): no new
    /// dispatch, no further execution (its queue was failed over).
    alive: bool,
    /// Elastic-scaling eligibility: an inactive chip drains its queue but
    /// receives no new dispatch ([`ServeSession::set_worker_count`]).
    active: bool,
    /// Health changes in ascending time order; empty means always healthy.
    health_changes: Vec<(u64, ChipHealth)>,
    /// Estimated service cycles of pending slots per SLO class, maintained
    /// incrementally so backlog reads are O(1) per lane.
    backlog: [u64; 3],
    sim: SimSession,
}

impl ChipLane {
    /// Estimated time the chip finishes everything currently queued.
    fn est_avail(&self) -> u64 {
        self.slots
            .back()
            .map_or(self.est_prev_finish, |s| s.est_finish)
    }

    /// Recomputes the estimated schedule from slot `from` onward (queue
    /// order, reload charged on model switches, the chip's health derate at
    /// each slot's estimated start applied to its service time), keeping
    /// the per-class backlog counters in step.
    fn recompute_est(&mut self, from: usize, cost: &CostModel) {
        for i in from..self.slots.len() {
            let (prev_finish, prev_model) = if i == 0 {
                (self.est_prev_finish, self.est_prev_model)
            } else {
                (self.slots[i - 1].est_finish, Some(self.slots[i - 1].model))
            };
            let slot = &self.slots[i];
            let switching = prev_model != Some(slot.model);
            let duration = group_service_cycles(
                slot.batch,
                cost.exec_cycles[slot.model],
                cost.reload_cycles[slot.model],
                switching,
            );
            let start = prev_finish.max(slot.ready);
            let health = health_at(&self.health_changes, start);
            let finish = start + health.scale_cycles(duration);
            let class = slot.class.index();
            self.backlog[class] -= slot.est_finish - slot.est_start;
            let slot = &mut self.slots[i];
            slot.est_start = start;
            slot.est_finish = finish;
            slot.health = health;
            self.backlog[class] += finish - start;
        }
    }

    /// Pops the front (executed) slot, chaining its estimate into
    /// `est_prev_*` and releasing its backlog contribution.
    fn retire_front(&mut self) -> Slot {
        let slot = self.slots.pop_front().expect("retiring an empty lane");
        self.backlog[slot.class.index()] -= slot.est_finish - slot.est_start;
        self.est_prev_finish = slot.est_finish;
        self.est_prev_model = Some(slot.model);
        slot
    }

    /// Drains every pending slot (fault/eviction paths), clearing the
    /// backlog counters without chaining the estimates — the drained work
    /// is leaving this lane, not retiring on it.
    fn drain_pending(&mut self) -> Vec<Slot> {
        self.backlog = [0; 3];
        self.slots.drain(..).collect()
    }

    /// Queue position for a group of `class` committed at virtual time
    /// `clock`: after everything already started (by the estimated
    /// schedule) and after equal-or-higher classes, ahead of queued
    /// strictly-lower classes — "jumping the backlog".  Executed slots are
    /// popped at harvest, so the scan only ever walks pending work.
    fn insertion_position(&self, class: SloClass, clock: u64) -> usize {
        let pending_from = self
            .slots
            .iter()
            .position(|s| s.est_start > clock)
            .map_or(self.slots.len(), |p| p);
        self.slots
            .iter()
            .skip(pending_from)
            .position(|s| s.class < class)
            .map_or(self.slots.len(), |p| pending_from + p)
    }
}

/// Result of executing one slot, harvested back into the session.
#[derive(Debug, Clone, Copy)]
struct SlotResult {
    gid: usize,
    done: ExecDone,
}

/// An incremental, event-driven serving session over a compiled
/// [`ServeRuntime`] — see the [module docs](self) for the lifecycle.
#[derive(Debug)]
pub struct ServeSession<'rt> {
    runtime: &'rt ServeRuntime,
    cost: CostModel,
    /// Virtual "now": the latest arrival or `run_until` target seen.
    clock: u64,
    drained: bool,
    /// Requests submitted so far.
    submitted: usize,
    /// Per-model open batch.
    open: Vec<Option<OpenBatch>>,
    /// Pending window closures: `(close_at, generation) -> model`.
    events: BTreeMap<(u64, u64), usize>,
    next_generation: u64,
    /// Committed groups not yet absorbed into the accumulator; the group
    /// with commit index `gid` lives at `groups[gid - groups_base]`.
    groups: VecDeque<GroupRecord>,
    /// Commit index of the front of `groups` (= groups already absorbed).
    groups_base: usize,
    /// The running report, fed in commit order as groups resolve.
    acc: ReportAccumulator,
    lanes: Vec<ChipLane>,
    next_round_robin: usize,
    /// Per-model online calibration-loop state; empty when the loop is off
    /// (no [`ServeConfig::calibration`] or no analytical chips).
    ///
    /// [`ServeConfig::calibration`]: crate::runtime::ServeConfig::calibration
    cal: Vec<ModelLoopState>,
    /// The next recalibration boundary (a multiple of the configured
    /// interval); meaningless while `cal` is empty.
    next_recal_at: u64,
    completions: VecDeque<RequestOutcome>,
    completions_dropped: u64,
    failed_over_groups: usize,
    failed_over_requests: usize,
}

impl<'rt> ServeSession<'rt> {
    /// Opens a session over the runtime's fleet, at virtual cycle 0.
    #[must_use]
    pub fn new(runtime: &'rt ServeRuntime) -> Self {
        let config = runtime.config();
        let lanes = (0..config.chips)
            .map(|chip| ChipLane {
                chip,
                backend: runtime.chip_backend(chip),
                slots: VecDeque::new(),
                est_prev_finish: 0,
                est_prev_model: None,
                actual_free: 0,
                actual_last_model: None,
                alive: true,
                active: true,
                health_changes: Vec::new(),
                backlog: [0; 3],
                sim: SimSession::new(),
            })
            .collect();
        let cal = if Self::loop_config(runtime).is_some() {
            vec![ModelLoopState::new(); runtime.plans().len()]
        } else {
            Vec::new()
        };
        let next_recal_at =
            Self::loop_config(runtime).map_or(u64::MAX, |cfg| cfg.recalibrate_interval_cycles);
        Self {
            runtime,
            cost: runtime.cost_model(),
            clock: 0,
            drained: false,
            submitted: 0,
            open: vec![None; runtime.plans().len()],
            events: BTreeMap::new(),
            next_generation: 0,
            groups: VecDeque::new(),
            groups_base: 0,
            acc: Self::fresh_accumulator(runtime),
            lanes,
            next_round_robin: 0,
            cal,
            next_recal_at,
            completions: VecDeque::new(),
            completions_dropped: 0,
            failed_over_groups: 0,
            failed_over_requests: 0,
        }
    }

    /// An empty accumulator carrying the runtime's fleet shape and
    /// analytical context — everything [`ReportAccumulator`] needs before
    /// the first group is absorbed.
    fn fresh_accumulator(runtime: &ServeRuntime) -> ReportAccumulator {
        let config = runtime.config();
        let nominal_ghz = runtime.plans()[0].chip_params().nominal_frequency_ghz;
        let mut acc = ReportAccumulator::new(config.seed, config.chips, nominal_ghz);
        let analytical = runtime.analytical_plans();
        let verify_enabled = analytical.is_some() && config.verify_every > 0;
        let fleet_bound = analytical.map_or(0.0, |plans| {
            plans
                .iter()
                .map(aim_core::analytical::AnalyticalPlan::error_bound)
                .fold(0.0f64, f64::max)
        });
        acc.set_analytical_context(runtime.analytical_chip_count(), verify_enabled, fleet_bound);
        acc
    }

    /// The online calibration loop's configuration when the loop is active:
    /// it needs both [`ServeConfig::calibration`] and analytical chips to
    /// close against.
    ///
    /// [`ServeConfig::calibration`]: crate::runtime::ServeConfig::calibration
    fn loop_config(runtime: &ServeRuntime) -> Option<CalibrationLoopConfig> {
        runtime.analytical_plans().and(runtime.config().calibration)
    }

    /// The session's virtual clock (cycles).
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Requests submitted so far.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Accepts one request at the session's virtual "now", tagged with its
    /// submission index (0 for the first submission).
    ///
    /// Submissions are expected in nondecreasing arrival order (an online
    /// front door sees time move forward); a request whose stated arrival
    /// lies before the session clock is treated as arriving *now* — you
    /// cannot receive a request earlier than the present — while its stated
    /// arrival still anchors the latency accounting.
    ///
    /// # Panics
    ///
    /// Panics if the request names a model the runtime has no plan for, or
    /// if the session was already drained.
    pub fn submit(&mut self, request: TraceRequest) {
        self.submit_with_id(self.submitted, request);
    }

    /// Like [`Self::submit`], but tags the request with a caller-chosen
    /// external id instead of the submission index.  The id is opaque to
    /// the session — it only flows back out as [`RequestOutcome::request`]
    /// and through [`Self::evict_pending`] — so a sharding layer can hand
    /// each shard its fleet-wide submission indices without any per-request
    /// translation table.
    ///
    /// # Panics
    ///
    /// Panics if the request names a model the runtime has no plan for, or
    /// if the session was already drained.
    pub fn submit_with_id(&mut self, external_id: usize, request: TraceRequest) {
        assert!(!self.drained, "cannot submit to a drained session");
        assert!(
            request.model < self.runtime.plans().len(),
            "request targets model {} but only {} plans are loaded",
            request.model,
            self.runtime.plans().len()
        );
        let arrival = request.arrival_cycles.max(self.clock);
        // Same-cycle arrivals are handled before window closures, mirroring
        // the offline scan's inclusive window horizon.
        self.process_events(arrival, false);
        self.clock = arrival;
        self.submitted += 1;

        let config = self.runtime.config();
        let model = request.model;
        let slo = request.slo;
        let joined = match &mut self.open[model] {
            Some(batch) if arrival <= batch.close_at && batch.requests.len() < config.max_batch => {
                batch.requests.push((external_id, request));
                batch.last_arrival = arrival;
                batch.class = batch.class.max(slo);
                true
            }
            _ => false,
        };
        if joined {
            let full = self.open[model]
                .as_ref()
                .is_some_and(|b| b.requests.len() >= config.max_batch);
            if full || slo == SloClass::LatencySensitive {
                self.flush_model(model);
            }
            return;
        }
        // A non-joinable open batch means its window expired between events
        // or it is full: close it before opening the successor.
        if self.open[model].is_some() {
            self.flush_model(model);
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        let close_at = arrival.saturating_add(config.batch_window_cycles);
        self.open[model] = Some(OpenBatch {
            requests: vec![(external_id, request)],
            last_arrival: arrival,
            close_at,
            class: slo,
            generation,
        });
        if slo == SloClass::LatencySensitive || config.max_batch == 1 {
            self.flush_model(model);
        } else {
            self.events.insert((close_at, generation), model);
        }
    }

    /// Steps the event loop up to virtual cycle `target`: closes batch
    /// windows that expire *before* then and executes every group whose
    /// estimated start has been reached.  Completions become available
    /// through [`Self::poll_completions`].
    ///
    /// Window closures are processed strictly before `target` — the same
    /// boundary [`Self::submit`] uses — so a window closing exactly at
    /// `target` stays open and a same-cycle arrival may still join it.
    /// That shared convention is what keeps incremental stepping
    /// byte-identical to submit-all-then-drain even when a step target
    /// collides with a window expiry; the batch commits at its closure
    /// time on the next step past it (or at [`Self::drain`]).
    ///
    /// With the online calibration loop active the step internally
    /// sub-steps at every recalibration boundary it crosses, so the loop's
    /// decisions land at canonical virtual times regardless of how coarsely
    /// the caller steps.
    pub fn run_until(&mut self, target: u64) {
        // A target behind the clock still executes everything the clock has
        // reached (the historical semantics) — normalize first so the
        // boundary walk sees the true horizon.
        let target = self.clock.max(target);
        self.step_recalibrations(target);
        self.advance_to(target);
    }

    /// One un-sub-stepped event-loop advance — [`Self::run_until`] without
    /// the recalibration boundaries.  The execution horizon is exactly
    /// `target`: when the boundary walk calls this with a boundary behind
    /// the clock, work estimated after the boundary stays queued for a
    /// later sub-step (that deferral is what pins each slot's execution to
    /// the boundary window containing its estimated start).
    fn advance_to(&mut self, target: u64) {
        self.process_events(target, false);
        self.clock = self.clock.max(target);
        self.execute_ready(target);
    }

    /// Advances through every recalibration boundary at or before `target`,
    /// applying the calibration loop's decisions at each.  A boundary is
    /// processed while the session still holds pending work *or* absorbed
    /// samples await a recalibration — both conditions are pure functions
    /// of the submission sequence at that boundary, which keeps the
    /// decision points independent of the caller's stepping granularity.
    /// Quiet stretches fast-forward: with no fresh samples, a boundary
    /// before the next session event is provably a no-op and is skipped
    /// arithmetically rather than stepped.
    fn step_recalibrations(&mut self, target: u64) {
        if self.cal.is_empty() {
            return;
        }
        let interval = Self::loop_config(self.runtime)
            .expect("loop state implies a loop config")
            .recalibrate_interval_cycles;
        while self.next_recal_at <= target {
            let pending_samples = self.cal.iter().any(|s| s.samples_since_recal > 0);
            if !self.has_pending_work() && !pending_samples {
                break;
            }
            if !pending_samples {
                match self.next_event_cycles() {
                    Some(next) if next > self.next_recal_at => {
                        let steps = (next - self.next_recal_at).div_ceil(interval);
                        self.next_recal_at = self
                            .next_recal_at
                            .saturating_add(steps.saturating_mul(interval));
                        continue;
                    }
                    Some(_) => {}
                    None => break,
                }
            }
            let boundary = self.next_recal_at;
            self.advance_to(boundary);
            self.apply_recalibration();
            self.next_recal_at = boundary.saturating_add(interval);
            if self.next_recal_at == boundary {
                break;
            }
        }
    }

    /// Whether anything in the session can still produce drift samples:
    /// queued window events, open batches, or undispatched/unexecuted
    /// slots.
    fn has_pending_work(&self) -> bool {
        !self.events.is_empty()
            || self.open.iter().any(Option::is_some)
            || self.lanes.iter().any(|l| !l.slots.is_empty())
    }

    /// Applies one recalibration boundary: for every model with fresh
    /// samples, judge the EWMA against the model's calibrated bound (the
    /// demotion/promotion streak machine), then fold the EWMA into the
    /// model's online cycle multiplier and reset it.  Models without fresh
    /// samples are untouched — no evidence, no decision.
    fn apply_recalibration(&mut self) {
        let Some(cfg) = Self::loop_config(self.runtime) else {
            return;
        };
        let plans = self
            .runtime
            .analytical_plans()
            .expect("loop config implies analytical plans");
        for (model, state) in self.cal.iter_mut().enumerate() {
            if state.samples_since_recal == 0 {
                continue;
            }
            let out_of_bound = state.ewma.abs() > plans[model].error_bound();
            if state.demoted {
                if out_of_bound {
                    state.in_streak = 0;
                } else {
                    state.in_streak += 1;
                    if state.in_streak >= cfg.promote_streak {
                        state.demoted = false;
                        state.promotions += 1;
                        state.in_streak = 0;
                    }
                }
            } else if out_of_bound {
                state.out_streak += 1;
                if state.out_streak >= cfg.demote_streak {
                    state.demoted = true;
                    state.demotions += 1;
                    state.out_streak = 0;
                }
            } else {
                state.out_streak = 0;
            }
            // Fold the observed residual into the prediction, then start a
            // fresh observation window (the correction is assumed applied,
            // so carrying the old EWMA would double-count it).
            state.adjust =
                (state.adjust * (1.0 + state.ewma)).clamp(MIN_CYCLE_ADJUST, MAX_CYCLE_ADJUST);
            state.recalibrations += 1;
            state.ewma = 0.0;
            state.samples_since_recal = 0;
        }
    }

    /// The next virtual time at which stepping this session can change its
    /// state on its own: the earliest queued window closure (plus one
    /// cycle, because [`Self::run_until`] processes closures strictly
    /// *before* its target — stepping to exactly `close_at` would leave the
    /// window open) or the earliest estimated start among pending front
    /// slots.  `None` when the session is quiescent — no open-window events
    /// and nothing queued on any lane.
    ///
    /// Orchestration layers that must observe completions at *canonical*
    /// times (independent of how coarsely their own caller steps) walk this
    /// event horizon instead of inventing step targets; a stale window
    /// event processes as a no-op, so stepping to a reported time always
    /// makes progress.
    #[must_use]
    pub fn next_event_cycles(&self) -> Option<u64> {
        let window = self
            .events
            .keys()
            .next()
            .map(|&(close_at, _)| close_at.saturating_add(1));
        let exec = self
            .lanes
            .iter()
            .filter_map(|lane| lane.slots.front().map(|slot| slot.est_start))
            .min();
        match (window, exec) {
            (Some(w), Some(e)) => Some(w.min(e)),
            (Some(t), None) | (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    /// Drains the accumulated per-request outcomes, in group-commit order
    /// within each harvest.  When `ServeConfig::completion_capacity` is
    /// set, outcomes beyond the cap were dropped oldest-first — see
    /// [`Self::completions_dropped`].
    pub fn poll_completions(&mut self) -> Vec<RequestOutcome> {
        self.completions.drain(..).collect()
    }

    /// Outcomes dropped (oldest first) because the bounded completion
    /// buffer overflowed between polls; 0 when the capacity is unbounded.
    /// Dropped outcomes are still fully accounted in the drained report —
    /// only the per-request stream is lossy.
    #[must_use]
    pub fn completions_dropped(&self) -> u64 {
        self.completions_dropped
    }

    /// Flushes every open batch, executes everything still queued, and
    /// freezes the final report.  The session stops accepting submissions;
    /// any outcomes not yet polled stay available via
    /// [`Self::poll_completions`].
    pub fn drain(&mut self) -> ServeReport {
        self.drain_accumulator().finish()
    }

    /// Like [`Self::drain`], but returns the incremental accumulator so
    /// sharded sessions can [`ReportAccumulator::merge`] before finishing.
    pub fn drain_accumulator(&mut self) -> ReportAccumulator {
        // Walk every remaining recalibration boundary first, so the loop's
        // final decisions land at their canonical virtual times no matter
        // how far the caller had stepped.
        self.step_recalibrations(u64::MAX);
        self.process_events(u64::MAX, true);
        self.drained = true;
        self.execute_ready(u64::MAX);
        debug_assert!(
            self.groups.is_empty(),
            "drain leaves no unresolved group behind"
        );
        if !self.cal.is_empty() {
            let plans = self
                .runtime
                .analytical_plans()
                .expect("loop state implies analytical plans");
            let rows: Vec<ModelCalibration> = self
                .cal
                .iter()
                .enumerate()
                .map(|(model, state)| ModelCalibration {
                    model,
                    samples: state.samples,
                    recalibrations: state.recalibrations,
                    demotions: state.demotions,
                    promotions: state.promotions,
                    demoted: state.demoted,
                    error_bound: plans[model].error_bound(),
                    max_abs_ewma_drift: state.max_abs_ewma,
                })
                .collect();
            self.acc.record_calibration(&rows);
        }
        std::mem::replace(&mut self.acc, Self::fresh_accumulator(self.runtime))
    }

    // --- the online batcher ------------------------------------------------

    /// Processes queued window closures with `close_at < target` (or
    /// `<= target` when `inclusive`), in time order, committing each closed
    /// batch at its closure time.
    fn process_events(&mut self, target: u64, inclusive: bool) {
        loop {
            let Some((&(close_at, generation), &model)) = self.events.iter().next() else {
                return;
            };
            if close_at > target || (!inclusive && close_at == target) {
                return;
            }
            self.events.remove(&(close_at, generation));
            // The event may be stale: the batch it was queued for can have
            // been flushed early (latency-sensitive join, max_batch) with a
            // successor opened since.
            let live = self.open[model]
                .as_ref()
                .is_some_and(|b| b.generation == generation);
            if live {
                self.clock = self.clock.max(close_at);
                self.flush_model(model);
            }
        }
    }

    /// Closes `model`'s open batch and commits it as a request group.
    fn flush_model(&mut self, model: usize) {
        let batch = self.open[model].take().expect("flushing a closed model");
        self.commit_group(model, batch);
    }

    // --- dispatch ----------------------------------------------------------

    /// Picks the chip a group ready at `ready` dispatches to, honouring the
    /// configured policy over the dispatchable chips: live *and*
    /// scaling-active, falling back to any live chip when elastic scaling
    /// has deactivated every survivor (failover must always have a target).
    /// Allocation-free — this runs on every group commit.
    fn choose_chip(&mut self, ready: u64) -> usize {
        let any_active = self.lanes.iter().any(|l| l.alive && l.active);
        let eligible = move |l: &&ChipLane| {
            if any_active {
                l.alive && l.active
            } else {
                l.alive
            }
        };
        match self.runtime.config().dispatch {
            DispatchPolicy::RoundRobin => {
                let count = self.lanes.iter().filter(eligible).count();
                assert!(count > 0, "every chip in the fleet is dead");
                let index = self.next_round_robin % count;
                self.next_round_robin += 1;
                self.lanes
                    .iter()
                    .filter(eligible)
                    .nth(index)
                    .expect("index < eligible count")
                    .chip
            }
            DispatchPolicy::LeastLoaded => {
                self.lanes
                    .iter()
                    .filter(eligible)
                    .min_by_key(|l| (l.est_avail().max(ready), l.chip))
                    .expect("every chip in the fleet is dead")
                    .chip
            }
        }
    }

    /// Dispatches a closed batch: chip choice, priority insertion, per-class
    /// admission.
    fn commit_group(&mut self, model: usize, batch: OpenBatch) {
        let config = self.runtime.config();
        let gid = self.groups_base + self.groups.len();
        let class = batch.class;
        let ready = batch.last_arrival;

        let chip = self.choose_chip(ready);
        let lane = &self.lanes[chip];
        let position = lane.insertion_position(class, self.clock);
        let prev_finish = if position == 0 {
            lane.est_prev_finish
        } else {
            lane.slots[position - 1].est_finish
        };
        let est_start = prev_finish.max(ready);

        if let Some(admission) = &config.admission {
            let backlog = est_start.saturating_sub(ready);
            let cap = admission.cap_for(class);
            if backlog > cap {
                for &(ri, ref request) in &batch.requests {
                    self.push_completion(RequestOutcome {
                        request: ri,
                        model,
                        slo: request.slo,
                        status: CompletionStatus::Rejected {
                            backlog_cycles: backlog,
                            backlog_cap_cycles: cap,
                        },
                    });
                }
                self.groups.push_back(GroupRecord {
                    model,
                    requests: batch.requests,
                    chip: None,
                    done: None,
                    failed_over: false,
                    evicted: false,
                });
                self.absorb_resolved();
                return;
            }
        }

        // The sample phase derives from the group's commit index and the
        // serve seed — not from a per-session "seen" counter, which would
        // always sample group 0 and restart on every shard, making the
        // fleet-wide effective rate depend on the shard count.
        let verify = config.verify_every > 0
            && self.runtime.chip_backend(chip) == BackendKind::Analytical
            && verify_sampled(config.seed, gid, config.verify_every);

        let lane = &mut self.lanes[chip];
        // Stamp the chip's health as of the slot's estimated start — NOT a
        // hard-coded `Healthy`: verification derates the predicted side by
        // this stamp, so a sample taken on a degraded chip compares derated
        // prediction against derated measurement instead of raising a false
        // drift alarm equal to the derate.  (`recompute_est` keeps the
        // stamp in step when the estimate moves.)
        lane.slots.insert(
            position,
            Slot {
                gid,
                model,
                class,
                batch: batch.requests.len(),
                ready,
                est_start: 0,
                est_finish: 0,
                verify,
                health: health_at(&lane.health_changes, est_start),
            },
        );
        lane.recompute_est(position, &self.cost);
        self.groups.push_back(GroupRecord {
            model,
            requests: batch.requests,
            chip: Some(chip),
            done: None,
            failed_over: false,
            evicted: false,
        });
    }

    // --- faults and elasticity ---------------------------------------------

    /// Kills `chip` at virtual time `at_cycles`: the chip's *executed
    /// prefix* — every queued group whose estimated start lies at or before
    /// the death — stays immutable and completes (mirroring the priority
    /// rule: work that has started is never disturbed), while every group
    /// that had not started fails over to the surviving chips through the
    /// session's dispatch policy, bypassing admission control (admitted work
    /// is never shed by a fault).  Requeued groups surface as
    /// `Served { failed_over: true }` in [`Self::poll_completions`].
    ///
    /// Returns `(groups, requests)` failed over.
    ///
    /// # Panics
    ///
    /// Panics if the session was drained, `chip` is out of range or already
    /// dead, or the death would leave the session without a live chip
    /// (failover needs a survivor — a fleet layer keeps at least one chip
    /// per shard alive).
    pub fn kill_chip(&mut self, chip: usize, at_cycles: u64) -> (usize, usize) {
        assert!(!self.drained, "cannot kill a chip in a drained session");
        assert!(chip < self.lanes.len(), "chip {chip} outside the fleet");
        assert!(self.lanes[chip].alive, "chip {chip} is already dead");
        assert!(
            self.lanes.iter().filter(|l| l.alive).count() > 1,
            "killing chip {chip} would leave no live chip to fail over to"
        );
        // Close batch windows and execute everything that started (by the
        // estimated schedule) before the death — the immutable prefix.
        self.run_until(at_cycles);
        let lane = &mut self.lanes[chip];
        lane.alive = false;
        lane.active = false;
        let orphans = lane.drain_pending();
        // The death may have taken down the only dispatch-eligible chip;
        // keep at least one survivor accepting work.
        if !self.lanes.iter().any(|l| l.alive && l.active) {
            let survivor = self
                .lanes
                .iter()
                .position(|l| l.alive)
                .expect("a survivor exists (asserted above)");
            self.lanes[survivor].active = true;
        }
        let mut requests = 0usize;
        for slot in &orphans {
            let record = &mut self.groups[slot.gid - self.groups_base];
            if !record.failed_over {
                record.failed_over = true;
                self.failed_over_groups += 1;
                self.failed_over_requests += record.requests.len();
            }
            requests += record.requests.len();
            // Failover cannot happen before the death is observed.
            let ready = slot.ready.max(at_cycles);
            let target = self.choose_chip(ready);
            self.groups[slot.gid - self.groups_base].chip = Some(target);
            let lane = &mut self.lanes[target];
            let position = lane.insertion_position(slot.class, self.clock);
            // Zero the estimate span: the target lane's backlog never saw
            // this slot, and `recompute_est` releases the old span before
            // accounting the fresh one.
            lane.slots.insert(
                position,
                Slot {
                    ready,
                    est_start: 0,
                    est_finish: 0,
                    ..*slot
                },
            );
            lane.recompute_est(position, &self.cost);
        }
        (orphans.len(), requests)
    }

    /// Changes `chip`'s health at virtual time `at_cycles`.  Groups whose
    /// estimated start lies at or before the change keep the health they
    /// were scheduled (and, having started, executed) under; later groups
    /// are re-estimated — and will execute — under the new derate.  The
    /// derate scales service *cycles* only ([`ChipHealth::scale_cycles`]),
    /// so it slows the chip identically under both execution backends.
    ///
    /// # Panics
    ///
    /// Panics if the session was drained, `chip` is out of range or dead, or
    /// health changes arrive out of time order.
    pub fn set_chip_health(&mut self, chip: usize, health: ChipHealth, at_cycles: u64) {
        assert!(
            !self.drained,
            "cannot change chip health in a drained session"
        );
        assert!(chip < self.lanes.len(), "chip {chip} outside the fleet");
        assert!(
            self.lanes[chip].alive,
            "cannot change the health of dead chip {chip}"
        );
        self.run_until(at_cycles);
        let lane = &mut self.lanes[chip];
        if let Some(&(last, _)) = lane.health_changes.last() {
            assert!(
                last <= at_cycles,
                "health changes must arrive in time order ({last} then {at_cycles})"
            );
        }
        lane.health_changes.push((at_cycles, health));
        lane.recompute_est(0, &self.cost);
    }

    /// Sets the number of dispatch-eligible workers at virtual time
    /// `at_cycles` — the elastic-scaling hook.  Scaling up activates the
    /// lowest-indexed live inactive chips; scaling down deactivates the
    /// highest-indexed active ones.  A deactivated chip *drains*: it keeps
    /// executing everything already queued but receives no new dispatch.
    /// The target is clamped to at least one worker and at most the live
    /// chip count.
    ///
    /// Returns `(activated, deactivated)`.
    ///
    /// # Panics
    ///
    /// Panics if the session was drained.
    pub fn set_worker_count(&mut self, target: usize, at_cycles: u64) -> (usize, usize) {
        assert!(!self.drained, "cannot scale a drained session");
        // Process pending window closures first so batches committed before
        // the scaling point dispatch under the old worker set.
        self.run_until(at_cycles);
        let target = target.max(1);
        let (mut activated, mut deactivated) = (0usize, 0usize);
        loop {
            let active = self.lanes.iter().filter(|l| l.alive && l.active).count();
            if active < target {
                let Some(lane) = self.lanes.iter_mut().find(|l| l.alive && !l.active) else {
                    break;
                };
                lane.active = true;
                activated += 1;
            } else if active > target {
                let lane = self
                    .lanes
                    .iter_mut()
                    .rev()
                    .find(|l| l.alive && l.active)
                    .expect("active > target >= 1 implies an active lane");
                lane.active = false;
                deactivated += 1;
            } else {
                break;
            }
        }
        (activated, deactivated)
    }

    /// Live chips currently eligible for new dispatch.
    #[must_use]
    pub fn active_workers(&self) -> usize {
        self.lanes.iter().filter(|l| l.alive && l.active).count()
    }

    /// Chips that have not died.
    #[must_use]
    pub fn alive_workers(&self) -> usize {
        self.lanes.iter().filter(|l| l.alive).count()
    }

    /// The health `chip` currently operates under.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is outside the fleet.
    #[must_use]
    pub fn chip_health(&self, chip: usize) -> ChipHealth {
        health_at(&self.lanes[chip].health_changes, self.clock)
    }

    /// Estimated service cycles of committed-but-not-started work, per SLO
    /// class (ascending priority order, [`SloClass::ALL`]) — the backlog
    /// pressure an elastic scaler reads.  Call after stepping the session to
    /// the decision point so "not started" reflects that virtual time.
    /// O(chips): the per-lane counters are maintained incrementally.
    #[must_use]
    pub fn class_backlog_cycles(&self) -> [u64; 3] {
        let mut backlog = [0u64; 3];
        for lane in &self.lanes {
            for (total, lane_class) in backlog.iter_mut().zip(lane.backlog) {
                *total += lane_class;
            }
        }
        backlog
    }

    /// Evicts every committed-but-not-started group and every open batch at
    /// virtual time `at_cycles`, returning the evicted requests as
    /// `(external id, request)` pairs, ascending by id — the migration
    /// hook a multi-region router uses when this session's region goes
    /// down.
    ///
    /// The *executed prefix* — every group whose estimated start lies at or
    /// before `at_cycles` — stays immutable and completes, exactly the cut
    /// [`Self::kill_chip`] applies: work that has started is never
    /// disturbed (drain-don't-strand).  Evicted groups and requests leave
    /// this session's accounting entirely: they produce no completions here
    /// and are excluded from the drained report's totals, so a router can
    /// re-submit them elsewhere without double counting.
    ///
    /// # Panics
    ///
    /// Panics if the session was drained.
    pub fn evict_pending(&mut self, at_cycles: u64) -> Vec<(usize, TraceRequest)> {
        assert!(!self.drained, "cannot evict from a drained session");
        // Step to the eviction point first so the executed prefix reflects
        // that virtual time.
        self.run_until(at_cycles);
        let mut evicted: Vec<(usize, TraceRequest)> = Vec::new();
        let mut orphans: Vec<Slot> = Vec::new();
        for lane in &mut self.lanes {
            orphans.extend(lane.drain_pending());
        }
        for slot in orphans {
            let record = &mut self.groups[slot.gid - self.groups_base];
            record.evicted = true;
            if record.failed_over {
                // The group leaves this session's accounting entirely, even
                // though it had been requeued off a dead chip first.
                self.failed_over_groups -= 1;
                self.failed_over_requests -= record.requests.len();
            }
            evicted.extend(record.requests.iter().copied());
        }
        // Open batches have not even committed; their queued window-closure
        // events go stale and are ignored by the generation liveness check.
        for batch in self.open.iter_mut().filter_map(Option::take) {
            evicted.extend(batch.requests);
        }
        self.absorb_resolved();
        evicted.sort_unstable_by_key(|&(ri, _)| ri);
        evicted
    }

    /// `(groups, requests)` failed over off dead chips so far (excluding
    /// groups later evicted).  O(1): maintained incrementally.
    #[must_use]
    pub fn failed_over(&self) -> (usize, usize) {
        (self.failed_over_groups, self.failed_over_requests)
    }

    // --- execution ---------------------------------------------------------

    /// Pushes one outcome, enforcing the configured completion capacity by
    /// dropping the oldest unpolled outcome when full.
    fn push_completion(&mut self, outcome: RequestOutcome) {
        let capacity = self.runtime.config().completion_capacity;
        if capacity > 0 && self.completions.len() >= capacity {
            self.completions.pop_front();
            self.completions_dropped += 1;
        }
        self.completions.push_back(outcome);
    }

    /// Executes every queued slot whose estimated start is at or before
    /// `horizon`, fanning chips out across worker threads when configured,
    /// and harvests the retired groups' completions in commit order.
    fn execute_ready(&mut self, horizon: u64) {
        let has_work = self
            .lanes
            .iter()
            .any(|l| l.slots.front().is_some_and(|s| s.est_start <= horizon));
        if !has_work {
            self.absorb_resolved();
            return;
        }
        let runtime = self.runtime;
        let reload = self.cost.reload_cycles.clone();
        let seed = runtime.config().seed;
        // Snapshot the loop state once per harvest: every chip prices this
        // window's slots under the same `(adjust, demoted)` pair, so the
        // results cannot depend on worker interleaving, and the next
        // recalibration boundary only sees samples committed before it.
        let cal_snapshot: Vec<(f64, bool)> =
            self.cal.iter().map(|s| (s.adjust, s.demoted)).collect();
        let loop_on = !cal_snapshot.is_empty();
        let lanes = std::mem::take(&mut self.lanes);
        let run = |mut lane: ChipLane| -> (ChipLane, Vec<SlotResult>) {
            let mut results = Vec::new();
            let model_cal = |model: usize| cal_snapshot.get(model).copied().unwrap_or((1.0, false));
            while lane.slots.front().is_some_and(|s| s.est_start <= horizon) {
                let slot = lane.slots[0];
                let plan = &runtime.plans()[slot.model];
                let seed_offset = replay_seed_offset(seed, slot.gid);
                let (exec, drift) = match lane.backend {
                    BackendKind::CycleAccurate => {
                        let exec = plan.execute_with_session(&mut lane.sim, seed_offset);
                        // Audit chips replay everything cycle-accurately
                        // anyway; when the loop is on, each replay doubles as
                        // a free drift sample against the (adjusted)
                        // analytical prediction.
                        let drift = loop_on.then(|| {
                            let predicted = runtime
                                .analytical_plans()
                                .expect("the loop requires calibrated plans")[slot.model]
                                .adjusted_cycles(model_cal(slot.model).0);
                            DriftSample {
                                predicted: slot.health.scale_cycles(predicted),
                                accurate: slot.health.scale_cycles(exec.cycles),
                                verify: false,
                            }
                        });
                        (exec, drift)
                    }
                    BackendKind::Analytical => {
                        let analytical = &runtime
                            .analytical_plans()
                            .expect("analytical chips imply calibrated plans")[slot.model];
                        let base = analytical.execution();
                        let (adjust, demoted) = model_cal(slot.model);
                        let predicted_cycles = if loop_on {
                            analytical.adjusted_cycles(adjust)
                        } else {
                            base.cycles
                        };
                        if demoted {
                            // The model lost its analytical trust: serve it
                            // cycle-accurately while the drift sample keeps
                            // feeding the promotion streak.
                            let accurate = plan.execute_with_session(&mut lane.sim, seed_offset);
                            let drift = DriftSample {
                                predicted: slot.health.scale_cycles(predicted_cycles),
                                accurate: slot.health.scale_cycles(accurate.cycles),
                                verify: slot.verify,
                            };
                            (accurate, Some(drift))
                        } else {
                            let exec = PlanExecution {
                                cycles: predicted_cycles,
                                ..base
                            };
                            let drift = slot.verify.then(|| {
                                let accurate =
                                    plan.execute_with_session(&mut lane.sim, seed_offset);
                                DriftSample {
                                    predicted: slot.health.scale_cycles(predicted_cycles),
                                    accurate: slot.health.scale_cycles(accurate.cycles),
                                    verify: true,
                                }
                            });
                            (exec, drift)
                        }
                    }
                };
                let switching = lane.actual_last_model != Some(slot.model);
                // The same health derate the estimate was scheduled under
                // stretches the measured service time — identically for
                // cycle-accurate measurements and analytical predictions.
                let duration = slot.health.scale_cycles(group_service_cycles(
                    slot.batch,
                    exec.cycles,
                    reload[slot.model],
                    switching,
                ));
                let start = lane.actual_free.max(slot.ready);
                let finish = start + duration;
                results.push(SlotResult {
                    gid: slot.gid,
                    done: ExecDone {
                        chip: lane.chip,
                        start,
                        finish,
                        exec,
                        drift,
                    },
                });
                lane.actual_free = finish;
                lane.actual_last_model = Some(slot.model);
                lane.retire_front();
            }
            (lane, results)
        };
        let outcomes: Vec<(ChipLane, Vec<SlotResult>)> = if runtime.config().parallel {
            lanes.into_par_iter().map(run).collect()
        } else {
            lanes.into_iter().map(run).collect()
        };
        let mut retired: Vec<SlotResult> = Vec::new();
        self.lanes = outcomes
            .into_iter()
            .map(|(lane, mut results)| {
                retired.append(&mut results);
                lane
            })
            .collect();
        // Completions stream in commit order within each harvest, so the
        // output order never depends on chip interleaving.
        retired.sort_unstable_by_key(|r| r.gid);
        for result in retired {
            let record = &mut self.groups[result.gid - self.groups_base];
            record.done = Some(result.done);
            let batch_size = record.requests.len();
            let failed_over = record.failed_over;
            let model = record.model;
            for pair_index in 0..batch_size {
                let record = &self.groups[result.gid - self.groups_base];
                let (ri, request) = record.requests[pair_index];
                self.push_completion(RequestOutcome {
                    request: ri,
                    model,
                    slo: request.slo,
                    status: CompletionStatus::Served {
                        chip: result.done.chip,
                        group: result.gid,
                        batch_size,
                        start_cycles: result.done.start,
                        finish_cycles: result.done.finish,
                        latency_cycles: result.done.finish - request.arrival_cycles,
                        deadline_missed: result.done.finish > request.deadline_cycles,
                        failed_over,
                    },
                });
            }
        }
        self.absorb_resolved();
    }

    // --- reporting ---------------------------------------------------------

    /// Absorbs the resolved prefix of the group deque into the session's
    /// accumulator — strictly in commit order, so the accumulation sequence
    /// never depends on when groups happened to retire — and drops the
    /// absorbed records.  A group is resolved once it was rejected,
    /// evicted, or executed; an unresolved group blocks everything behind
    /// it (the deque is the in-flight window, bounded by queue depth).
    fn absorb_resolved(&mut self) {
        while let Some(front) = self.groups.front() {
            let resolved = front.evicted || front.chip.is_none() || front.done.is_some();
            if !resolved {
                break;
            }
            let record = self.groups.pop_front().expect("front exists");
            self.groups_base += 1;
            // Evicted groups migrated to another session before starting;
            // whoever served them accounts for them.
            if record.evicted {
                continue;
            }
            self.acc.note_group_formed();
            let Some(chip) = record.chip else {
                for (_, request) in &record.requests {
                    self.acc.absorb_rejected_request(request.slo);
                }
                continue;
            };
            let done = record.done.expect("a resolved admitted group has executed");
            self.acc.absorb_executed_group(
                chip,
                done.start,
                done.finish,
                record.requests.len(),
                &done.exec,
            );
            for &(_, request) in &record.requests {
                self.acc.absorb_served_request(
                    request.slo,
                    done.finish - request.arrival_cycles,
                    done.finish > request.deadline_cycles,
                );
            }
            if let Some(sample) = done.drift {
                if sample.verify {
                    let bound = self
                        .runtime
                        .analytical_plans()
                        .expect("verified groups are analytical")[record.model]
                        .error_bound();
                    self.acc
                        .absorb_verify_sample(sample.predicted, sample.accurate, bound);
                }
                // The EWMA folds samples in commit order — the only order
                // shared across worker counts and run_until granularities —
                // over the *signed* post-scaling residual, so systematic
                // over- and under-prediction pull the next recalibration in
                // opposite directions instead of both inflating it.
                if let Some(cfg) = Self::loop_config(self.runtime) {
                    let state = &mut self.cal[record.model];
                    let predicted = sample.predicted.max(1) as f64;
                    let residual = (sample.accurate as f64 - predicted) / predicted;
                    state.ewma = cfg.ewma_decay * residual + (1.0 - cfg.ewma_decay) * state.ewma;
                    state.max_abs_ewma = state.max_abs_ewma.max(state.ewma.abs());
                    state.samples += 1;
                    state.samples_since_recal += 1;
                }
            }
        }
    }
}

/// Seed offset of one group's replay: distinct per group, folded with the
/// serve seed, independent of chip assignment and worker count.
pub(crate) fn replay_seed_offset(seed: u64, group_idx: usize) -> u64 {
    seed.wrapping_add((group_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Whether a group's execution is verification-sampled, derived by hashing
/// the group's fleet-wide commit index with the serve seed (splitmix64
/// finalizer).  A hash phase — unlike a per-session counter — samples at the
/// same effective rate whether the fleet runs one shard or many, and never
/// privileges group 0.
pub(crate) fn verify_sampled(seed: u64, group_idx: usize, verify_every: usize) -> bool {
    let mut x = seed ^ (group_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x.is_multiple_of(verify_every as u64)
}
