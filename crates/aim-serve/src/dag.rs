//! DAG orchestration: multi-stage requests over the fault-tolerant fleet.
//!
//! A [`workloads::dag::DagRequest`] names a [`DagTemplate`] — a stage graph
//! over the model zoo — plus an arrival, a whole-DAG deadline and per-stage
//! think gaps.  The [`DagOrchestrator`] turns each instance into ordinary
//! fleet traffic:
//!
//! 1. **Dependency-driven submission** — a stage is submitted the moment
//!    every parent stage has completed (plus the stage's think gap), as a
//!    plain [`TraceRequest`] whose stated arrival is the dependency-ready
//!    time.
//! 2. **Per-stage deadline budgets** — the whole-DAG deadline splits into
//!    per-stage deadlines proportional to critical-path position
//!    ([`split_dag_deadline`]), so every tail stage's budget lands exactly
//!    on the DAG deadline.
//! 3. **Priority inheritance** — with
//!    [`DagOrchestratorConfig::inherit_priority`] on, each stage runs under
//!    the highest class of itself and everything downstream of it
//!    ([`DagTemplate::inherited_classes`]), so a latency-sensitive tail
//!    promotes its not-yet-started upstream stages through the session's
//!    priority-insertion rule.
//! 4. **Per-DAG admission** — with an [`AdmissionConfig`] set, an arriving
//!    DAG is admitted or shed *whole* against the fleet's mean per-shard
//!    backlog: a mid-DAG stage is never orphaned by letting half a pipeline
//!    into a fleet that cannot take the rest.
//!
//! ## The canonical event walk
//!
//! The orchestrator never steps the fleet to caller-chosen times.  It walks
//! a canonical virtual-time event sequence — the merge of its own
//! dependency-ready queue and the fleet's event horizon
//! ([`FleetSession::next_event_cycles`]), observing completions via
//! [`FleetSession::observe_until`] — and the caller's
//! [`DagOrchestrator::run_until`] merely bounds how far the walk proceeds.
//! Every time the orchestrator acts on is therefore a pure function of
//! `(submissions, faults, config)`, which is what keeps the drained report
//! **byte-identical** across stepping granularity and worker counts, for
//! either execution backend.
//!
//! ## Conservation
//!
//! Every stage of every submitted DAG resolves exactly once: `Served` or
//! `Rejected` through the fleet, or `Shed` by the orchestrator (whole-DAG
//! admission, a failed sibling stage, or [`DagOrchestrator::evict_pending`]).
//! The drained [`FleetReport::dag`] stats pin `served + rejected + shed ==
//! stages_total` and `completed + failed == dags`.

use std::collections::{BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use workloads::dag::{DagRequest, DagTemplate, SessionItem, SessionItemKind};
use workloads::inputs::{FaultPlan, SloClass, TraceRequest};

use crate::fleet::{FleetConfig, FleetReport, FleetSession};
use crate::report::DagAccumulator;
use crate::runtime::ServeRuntime;
use crate::scheduler::{split_dag_deadline, AdmissionConfig, CostModel};
use crate::session::CompletionStatus;

/// Orchestrator policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagOrchestratorConfig {
    /// Promote each stage to the highest class of itself and its
    /// descendants (priority inheritance).  Off, every stage runs under its
    /// own class (template override or the DAG instance's class).
    pub inherit_priority: bool,
    /// Whole-DAG admission control: an arriving DAG is shed outright —
    /// every stage resolved `Shed`, nothing submitted — when the fleet's
    /// mean per-shard backlog (all classes) exceeds the cap of the DAG's
    /// class.  `None` admits every DAG (stages still face the session's
    /// own per-stage admission).
    pub admission: Option<AdmissionConfig>,
}

impl Default for DagOrchestratorConfig {
    fn default() -> Self {
        Self {
            inherit_priority: true,
            admission: None,
        }
    }
}

/// How one stage (or point request) left the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageStatus {
    /// The stage was submitted and resolved by the fleet.
    Fleet {
        /// Shard that served (or rejected) the stage.
        shard: usize,
        /// The per-request completion.
        status: CompletionStatus,
    },
    /// The orchestrator shed the stage without the fleet ever resolving
    /// it: whole-DAG admission, a failed sibling stage, or eviction.
    Shed,
}

/// One resolved stage, streamed by [`DagOrchestrator::poll_outcomes`].
/// Point requests flow through the same stream as single-stage non-DAG
/// items (`dag == false`, `stage == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageOutcome {
    /// Orchestrator item id, in submission order (points and DAGs share
    /// one sequence).
    pub item: usize,
    /// Stage index within the item's template (0 for points).
    pub stage: usize,
    /// Total stages of the item (1 for points).
    pub stages: usize,
    /// Whether the item is a DAG instance.
    pub dag: bool,
    /// Model the stage targeted.
    pub model: usize,
    /// Class the stage was submitted under (after inheritance, when on).
    pub class: SloClass,
    /// How the stage resolved.
    pub status: StageStatus,
}

/// Where one fleet submission index points back to.
#[derive(Debug, Clone, Copy)]
enum SubmissionRef {
    Point { item: usize },
    Stage { item: usize, stage: usize },
}

/// Orchestrator-side state of one live DAG instance.
#[derive(Debug)]
struct DagInstance {
    template: usize,
    arrival: u64,
    deadline: u64,
    class: SloClass,
    /// Class each stage is submitted under (inheritance applied).
    effective: Vec<SloClass>,
    /// Per-stage deadline budgets ([`split_dag_deadline`]).
    stage_deadlines: Vec<u64>,
    /// Think gaps of this instance.
    gaps: Vec<u64>,
    submitted: Vec<bool>,
    resolved: Vec<bool>,
    /// Parents still unserved, per stage.
    pending_parents: Vec<usize>,
    /// Running `max(parent finish + gap)` per stage — the dependency-ready
    /// time once `pending_parents` hits zero.
    child_ready: Vec<u64>,
    /// Stages not yet resolved.
    unresolved: usize,
    /// A stage was rejected or shed: no further submissions for this DAG.
    failed: bool,
    /// Latest measured stage finish (the end-to-end completion time).
    max_finish: u64,
}

/// One submitted item: a point request or a DAG instance.
#[derive(Debug)]
enum Item {
    Point { resolved: bool },
    Dag(Box<DagInstance>),
}

/// Multi-stage orchestration over a [`FleetSession`] — see the
/// [module docs](self) for the submission, deadline, inheritance and
/// admission rules.
#[derive(Debug)]
pub struct DagOrchestrator<'rt> {
    fleet: FleetSession<'rt>,
    config: DagOrchestratorConfig,
    templates: Vec<DagTemplate>,
    /// Child lists per template, derived once.
    children: Vec<Vec<Vec<usize>>>,
    cost: CostModel,
    items: Vec<Item>,
    /// Fleet submission index -> orchestrator item/stage.
    submissions: Vec<SubmissionRef>,
    /// Dependency-ready stages awaiting submission:
    /// `(ready_at, item, stage)` — the BTreeSet order *is* the canonical
    /// submission order.
    ready: BTreeSet<(u64, usize, usize)>,
    outcomes: VecDeque<StageOutcome>,
    acc: DagAccumulator,
    drained: bool,
}

impl<'rt> DagOrchestrator<'rt> {
    /// Opens an orchestrated fleet over the runtime with the fault schedule
    /// armed and the template catalogue fixed.
    ///
    /// # Panics
    ///
    /// Panics on an invalid template (see [`DagTemplate::validate`]) or an
    /// invalid fleet configuration.
    #[must_use]
    pub fn new(
        runtime: &'rt ServeRuntime,
        fleet: FleetConfig,
        faults: FaultPlan,
        templates: Vec<DagTemplate>,
        config: DagOrchestratorConfig,
    ) -> Self {
        for template in &templates {
            template.validate();
        }
        let children = templates.iter().map(DagTemplate::children).collect();
        Self {
            fleet: FleetSession::new(runtime, fleet, faults),
            config,
            children,
            cost: runtime.cost_model(),
            templates,
            items: Vec::new(),
            submissions: Vec::new(),
            ready: BTreeSet::new(),
            outcomes: VecDeque::new(),
            acc: DagAccumulator::new(),
            drained: false,
        }
    }

    /// The orchestrator's virtual clock: the underlying fleet's.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.fleet.clock()
    }

    /// Items (points + DAGs) submitted so far.
    #[must_use]
    pub fn items(&self) -> usize {
        self.items.len()
    }

    /// The underlying fleet (read-only).
    #[must_use]
    pub fn fleet(&self) -> &FleetSession<'rt> {
        &self.fleet
    }

    /// Submits one [`SessionItem`] (point or DAG), returning its item id.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Self::submit_point`] /
    /// [`Self::submit_dag`].
    pub fn submit_item(&mut self, item: &SessionItem) -> usize {
        match &item.kind {
            SessionItemKind::Point(request) => self.submit_point(*request),
            SessionItemKind::Dag(dag) => self.submit_dag(dag),
        }
    }

    /// Submits one point request, returning its item id.  Points bypass
    /// whole-DAG admission (the session's per-stage admission still
    /// applies) and flow through the fleet untouched.
    ///
    /// # Panics
    ///
    /// Panics if the orchestrator was drained or the request names an
    /// unknown model.
    pub fn submit_point(&mut self, request: TraceRequest) -> usize {
        assert!(!self.drained, "cannot submit to a drained orchestrator");
        self.pump(request.arrival_cycles);
        let item = self.items.len();
        self.items.push(Item::Point { resolved: false });
        self.acc.note_point();
        self.submissions.push(SubmissionRef::Point { item });
        self.fleet.submit(request);
        item
    }

    /// Submits one DAG instance, returning its item id.  Root stages are
    /// submitted at the DAG's arrival; downstream stages are submitted by
    /// the canonical event walk as their parents complete.  With
    /// [`DagOrchestratorConfig::admission`] set, the whole DAG may be shed
    /// here instead — every stage resolves `Shed` and nothing reaches the
    /// fleet.
    ///
    /// # Panics
    ///
    /// Panics if the orchestrator was drained, the template index is out
    /// of range, or the instance's gap vector does not match the template.
    pub fn submit_dag(&mut self, dag: &DagRequest) -> usize {
        assert!(!self.drained, "cannot submit to a drained orchestrator");
        let template = self
            .templates
            .get(dag.template)
            .unwrap_or_else(|| panic!("unknown DAG template index {}", dag.template))
            .clone();
        let stages = template.stages.len();
        assert_eq!(
            dag.stage_gaps.len(),
            stages,
            "DAG instance carries one think gap per template stage"
        );
        // Process every canonical event due before this arrival first, so
        // the admission read and the root submissions see the same fleet
        // state regardless of caller stepping.
        self.pump(dag.arrival_cycles);

        let item = self.items.len();
        self.acc.note_dag(dag.slo, stages);

        if let Some(admission) = self.config.admission {
            self.fleet.observe_until(dag.arrival_cycles);
            let backlog: u64 = self
                .fleet
                .class_backlog_cycles()
                .iter()
                .fold(0u64, |a, &b| a.saturating_add(b));
            let mean_per_shard = backlog / self.fleet.shards() as u64;
            if mean_per_shard > admission.cap_for(dag.slo) {
                // Shed the whole DAG: never orphan a mid-DAG stage.
                for stage in 0..stages {
                    self.outcomes.push_back(StageOutcome {
                        item,
                        stage,
                        stages,
                        dag: true,
                        model: template.stages[stage].model,
                        class: template.own_class(stage, dag.slo),
                        status: StageStatus::Shed,
                    });
                    self.acc.absorb_stage_shed();
                }
                self.acc.absorb_dag_failed();
                self.items.push(Item::Dag(Box::new(DagInstance {
                    template: dag.template,
                    arrival: dag.arrival_cycles,
                    deadline: dag.deadline_cycles,
                    class: dag.slo,
                    effective: Vec::new(),
                    stage_deadlines: Vec::new(),
                    gaps: Vec::new(),
                    submitted: vec![false; stages],
                    resolved: vec![true; stages],
                    pending_parents: Vec::new(),
                    child_ready: Vec::new(),
                    unresolved: 0,
                    failed: true,
                    max_finish: 0,
                })));
                return item;
            }
        }

        let effective = if self.config.inherit_priority {
            template.inherited_classes(dag.slo)
        } else {
            (0..stages)
                .map(|s| template.own_class(s, dag.slo))
                .collect()
        };
        for (stage, &class) in effective.iter().enumerate() {
            if class > template.own_class(stage, dag.slo) {
                self.acc.note_promotion();
            }
        }
        let stage_deadlines = split_dag_deadline(
            &template,
            &dag.stage_gaps,
            &self.cost,
            dag.arrival_cycles,
            dag.deadline_cycles,
        );
        let pending_parents: Vec<usize> = template.stages.iter().map(|s| s.parents.len()).collect();
        let instance = DagInstance {
            template: dag.template,
            arrival: dag.arrival_cycles,
            deadline: dag.deadline_cycles,
            class: dag.slo,
            effective,
            stage_deadlines,
            gaps: dag.stage_gaps.clone(),
            submitted: vec![false; stages],
            resolved: vec![false; stages],
            pending_parents: pending_parents.clone(),
            child_ready: vec![dag.arrival_cycles; stages],
            unresolved: stages,
            failed: false,
            max_finish: 0,
        };
        self.items.push(Item::Dag(Box::new(instance)));
        // Root stages issue at the DAG's arrival (their think gap, if any,
        // is ignored — a gap models the pause *after* a parent completes).
        for (stage, &parents) in pending_parents.iter().enumerate() {
            if parents == 0 {
                self.submit_stage(item, stage, dag.arrival_cycles);
            }
        }
        item
    }

    /// Steps orchestration up to virtual cycle `target`: walks every
    /// canonical event (dependency-ready submission or fleet event) due at
    /// or before then.  Stepping granularity never changes the drained
    /// report bytes.
    pub fn run_until(&mut self, target: u64) {
        self.pump(target);
    }

    /// Drains the resolved stage/point outcomes accumulated since the last
    /// poll, in resolution order.
    pub fn poll_outcomes(&mut self) -> Vec<StageOutcome> {
        self.outcomes.drain(..).collect()
    }

    /// Evicts every committed-but-not-started request across the fleet at
    /// virtual time `at_cycles` — the region-loss analogue.  Each evicted
    /// point resolves `Shed`; each evicted stage resolves `Shed` and fails
    /// its DAG, shedding the DAG's not-yet-submitted stages too (each
    /// exactly once).  In-flight sibling stages still resolve through the
    /// fleet.  Returns the number of requests evicted from the fleet.
    ///
    /// # Panics
    ///
    /// Panics if the orchestrator was drained.
    pub fn evict_pending(&mut self, at_cycles: u64) -> usize {
        assert!(!self.drained, "cannot evict from a drained orchestrator");
        self.pump(at_cycles);
        let evicted = self.fleet.evict_pending(at_cycles);
        let count = evicted.len();
        for (fleet_id, request) in evicted {
            match self.submissions[fleet_id] {
                SubmissionRef::Point { item } => {
                    let Item::Point { resolved } = &mut self.items[item] else {
                        unreachable!("point submission maps to a point item");
                    };
                    assert!(!*resolved, "evicted point already resolved");
                    *resolved = true;
                    self.outcomes.push_back(StageOutcome {
                        item,
                        stage: 0,
                        stages: 1,
                        dag: false,
                        model: request.model,
                        class: request.slo,
                        status: StageStatus::Shed,
                    });
                }
                SubmissionRef::Stage { item, stage } => {
                    self.resolve_shed_stage(item, stage);
                    self.fail_dag(item);
                    self.finalize_if_done(item);
                }
            }
        }
        count
    }

    /// Walks every remaining canonical event, drains the fleet and freezes
    /// the report with the DAG-level stats attached
    /// ([`FleetReport::dag`]).
    ///
    /// # Panics
    ///
    /// Panics if the orchestrator was already drained.
    pub fn drain(&mut self) -> FleetReport {
        assert!(!self.drained, "orchestrator already drained");
        self.pump(u64::MAX);
        self.drained = true;
        debug_assert!(self.ready.is_empty(), "drain leaves no stage unsubmitted");
        let mut report = self.fleet.drain();
        report.dag = Some(self.acc.finish());
        report
    }

    // --- the canonical event walk ------------------------------------------

    /// Processes every canonical event due at or before `target`, in time
    /// order; dependency-ready submissions run before fleet observations on
    /// ties (a submission at `t` must enter the estimated schedule before
    /// anything else is derived from it).
    fn pump(&mut self, target: u64) {
        loop {
            let ready_head = self.ready.iter().next().copied();
            let fleet_event = self.fleet.next_event_cycles();
            let next = match (ready_head, fleet_event) {
                (None, None) => break,
                (Some((r, _, _)), None) => r,
                (None, Some(e)) => e,
                (Some((r, _, _)), Some(e)) => r.min(e),
            };
            if next > target {
                break;
            }
            if let Some((ready_at, item, stage)) = ready_head.filter(|&(r, _, _)| r <= next) {
                self.ready.remove(&(ready_at, item, stage));
                self.submit_stage(item, stage, ready_at);
                continue;
            }
            self.fleet.observe_until(next);
            self.harvest();
        }
    }

    /// Submits one dependency-ready stage to the fleet.
    fn submit_stage(&mut self, item: usize, stage: usize, ready_at: u64) {
        let Item::Dag(instance) = &mut self.items[item] else {
            unreachable!("stages only exist on DAG items");
        };
        debug_assert!(!instance.failed, "failed DAGs never submit");
        instance.submitted[stage] = true;
        let request = TraceRequest {
            model: self.templates[instance.template].stages[stage].model,
            arrival_cycles: ready_at,
            deadline_cycles: instance.stage_deadlines[stage],
            slo: instance.effective[stage],
        };
        self.submissions.push(SubmissionRef::Stage { item, stage });
        self.fleet.submit(request);
    }

    /// Polls the fleet and resolves every completed submission.
    fn harvest(&mut self) {
        for fleet_outcome in self.fleet.poll_completions() {
            let outcome = fleet_outcome.outcome;
            match self.submissions[outcome.request] {
                SubmissionRef::Point { item } => {
                    let Item::Point { resolved } = &mut self.items[item] else {
                        unreachable!("point submission maps to a point item");
                    };
                    debug_assert!(!*resolved, "point resolved twice");
                    *resolved = true;
                    self.outcomes.push_back(StageOutcome {
                        item,
                        stage: 0,
                        stages: 1,
                        dag: false,
                        model: outcome.model,
                        class: outcome.slo,
                        status: StageStatus::Fleet {
                            shard: fleet_outcome.shard,
                            status: outcome.status,
                        },
                    });
                }
                SubmissionRef::Stage { item, stage } => {
                    self.resolve_fleet_stage(item, stage, fleet_outcome.shard, outcome.status);
                }
            }
        }
    }

    /// Resolves one fleet-completed stage: bookkeeping, child fan-out on a
    /// serve, whole-DAG failure on a rejection.
    fn resolve_fleet_stage(
        &mut self,
        item: usize,
        stage: usize,
        shard: usize,
        status: CompletionStatus,
    ) {
        let Item::Dag(instance) = &mut self.items[item] else {
            unreachable!("stage submission maps to a DAG item");
        };
        debug_assert!(!instance.resolved[stage], "stage resolved twice");
        instance.resolved[stage] = true;
        instance.unresolved -= 1;
        let stages = instance.submitted.len();
        self.outcomes.push_back(StageOutcome {
            item,
            stage,
            stages,
            dag: true,
            model: self.templates[instance.template].stages[stage].model,
            class: instance.effective[stage],
            status: StageStatus::Fleet { shard, status },
        });
        match status {
            CompletionStatus::Served { finish_cycles, .. } => {
                self.acc.absorb_stage_served();
                instance.max_finish = instance.max_finish.max(finish_cycles);
                if !instance.failed {
                    let children = &self.children[instance.template][stage];
                    for &child in children {
                        let ready = finish_cycles.saturating_add(instance.gaps[child]);
                        instance.child_ready[child] = instance.child_ready[child].max(ready);
                        instance.pending_parents[child] -= 1;
                        if instance.pending_parents[child] == 0 {
                            self.ready
                                .insert((instance.child_ready[child], item, child));
                        }
                    }
                }
            }
            CompletionStatus::Rejected { .. } => {
                self.acc.absorb_stage_rejected();
                self.fail_dag(item);
            }
        }
        self.finalize_if_done(item);
    }

    /// Marks one never-to-run stage `Shed` (exactly once).
    fn resolve_shed_stage(&mut self, item: usize, stage: usize) {
        let Item::Dag(instance) = &mut self.items[item] else {
            unreachable!("stage submission maps to a DAG item");
        };
        assert!(!instance.resolved[stage], "stage shed twice");
        instance.resolved[stage] = true;
        instance.unresolved -= 1;
        let stages = instance.submitted.len();
        self.outcomes.push_back(StageOutcome {
            item,
            stage,
            stages,
            dag: true,
            model: self.templates[instance.template].stages[stage].model,
            class: instance.effective[stage],
            status: StageStatus::Shed,
        });
        self.acc.absorb_stage_shed();
    }

    /// Fails a DAG: stops all future submissions and sheds every stage that
    /// was never submitted (in-flight stages still resolve via the fleet).
    fn fail_dag(&mut self, item: usize) {
        {
            let Item::Dag(instance) = &mut self.items[item] else {
                unreachable!("only DAG items fail");
            };
            if instance.failed {
                return;
            }
            instance.failed = true;
        }
        self.ready.retain(|&(_, i, _)| i != item);
        let to_shed: Vec<usize> = {
            let Item::Dag(instance) = &self.items[item] else {
                unreachable!()
            };
            (0..instance.submitted.len())
                .filter(|&s| !instance.submitted[s] && !instance.resolved[s])
                .collect()
        };
        for stage in to_shed {
            self.resolve_shed_stage(item, stage);
        }
    }

    /// Absorbs the whole-DAG verdict once every stage has resolved.
    fn finalize_if_done(&mut self, item: usize) {
        let Item::Dag(instance) = &self.items[item] else {
            unreachable!("only DAG items finalize");
        };
        if instance.unresolved > 0 {
            return;
        }
        if instance.failed {
            self.acc.absorb_dag_failed();
        } else {
            let e2e = instance.max_finish.saturating_sub(instance.arrival);
            let missed = instance.max_finish > instance.deadline;
            let class = instance.class;
            self.acc.absorb_dag_completed(class, e2e, missed);
        }
    }
}
