//! The serving runtime: a fleet of chip workers executing compiled plans
//! under the deterministic scheduler.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use aim_core::pipeline::{AimConfig, CompiledPlan, PlanExecution};
use pim_sim::chip::SimSession;
use workloads::inputs::TraceRequest;
use workloads::zoo::Model;

use crate::report::{percentile_sorted, ChipServeStats, ServeReport};
use crate::scheduler::{
    dispatch, form_groups, timeline, AdmissionConfig, CostModel, DispatchPolicy,
};

/// Configuration of a serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of simulated chips in the fleet (= chip workers).
    pub chips: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Batching window: a group absorbs same-model requests arriving within
    /// this many cycles of its first member.
    pub batch_window_cycles: u64,
    /// Weight-reload cost a model switch charges, per mapped macro slice of
    /// the incoming model.
    pub reload_cycles_per_slice: u64,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Optional admission control; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Fan chip workers out across rayon scoped threads.  `false` runs the
    /// fleet on the calling thread; the report is byte-identical either way
    /// (the determinism contract).
    pub parallel: bool,
    /// Serve seed, folded into every request replay's input activity.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            chips: 4,
            max_batch: 8,
            batch_window_cycles: 20_000,
            reload_cycles_per_slice: 32,
            dispatch: DispatchPolicy::LeastLoaded,
            admission: None,
            parallel: true,
            seed: 0xF1EE7,
        }
    }
}

/// A compiled model fleet plus its serving configuration.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    plans: Vec<CompiledPlan>,
    config: ServeConfig,
}

impl ServeRuntime {
    /// Compiles every model once (in parallel) and builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or the configuration is degenerate.
    #[must_use]
    pub fn compile(models: &[Model], aim: &AimConfig, config: ServeConfig) -> Self {
        assert!(!models.is_empty(), "a runtime needs at least one model");
        let plans: Vec<CompiledPlan> = models
            .par_iter()
            .map(|m| CompiledPlan::compile(m, aim))
            .collect();
        Self::from_plans(plans, config)
    }

    /// Builds the runtime from pre-compiled plans (e.g. per-model AIM
    /// configurations, or plans shared across runtimes).
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty or the configuration is degenerate.
    #[must_use]
    pub fn from_plans(plans: Vec<CompiledPlan>, config: ServeConfig) -> Self {
        assert!(!plans.is_empty(), "a runtime needs at least one plan");
        assert!(config.chips >= 1, "a fleet needs at least one chip");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        Self { plans, config }
    }

    /// The compiled plans, indexed by model id.
    #[must_use]
    pub fn plans(&self) -> &[CompiledPlan] {
        &self.plans
    }

    /// The serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The dispatcher's compile-time cost model.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            exec_cycles: self
                .plans
                .iter()
                .map(CompiledPlan::estimated_cycles)
                .collect(),
            reload_cycles: self
                .plans
                .iter()
                .map(|p| p.total_slices() as u64 * self.config.reload_cycles_per_slice)
                .collect(),
        }
    }

    /// Replays a request trace through the fleet and returns the aggregated
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model the runtime has no plan for.
    #[must_use]
    pub fn serve(&self, trace: &[TraceRequest]) -> ServeReport {
        for r in trace {
            assert!(
                r.model < self.plans.len(),
                "request targets model {} but only {} plans are loaded",
                r.model,
                self.plans.len()
            );
        }
        let config = &self.config;
        let groups = form_groups(trace, config.max_batch, config.batch_window_cycles);
        let cost = self.cost_model();
        let outcome = dispatch(
            &groups,
            config.chips,
            config.dispatch,
            config.admission.as_ref(),
            &cost,
        );

        // Per-chip queues, in dispatch (= group) order.
        let mut chip_queues: Vec<Vec<usize>> = vec![Vec::new(); config.chips];
        for (gi, slot) in outcome.assignment.iter().enumerate() {
            if let Some(chip) = slot {
                chip_queues[*chip].push(gi);
            }
        }

        // Chip workers: each runs its queue through one reusable SimSession.
        // Workers touch disjoint state and every replay is seeded from the
        // group index, so the fan-out cannot perturb results.
        let run_worker = |queue: &Vec<usize>| -> Vec<PlanExecution> {
            let mut session = SimSession::new();
            queue
                .iter()
                .map(|&gi| {
                    let group = &groups[gi];
                    self.plans[group.model]
                        .execute_with_session(&mut session, self.replay_seed_offset(gi))
                })
                .collect()
        };
        let executions: Vec<Vec<PlanExecution>> = if config.parallel {
            chip_queues.par_iter().map(run_worker).collect()
        } else {
            chip_queues.iter().map(run_worker).collect()
        };

        // Scatter execution results back to group order.
        let mut group_exec_cycles = vec![0u64; groups.len()];
        let mut group_execution: Vec<Option<PlanExecution>> = vec![None; groups.len()];
        for (chip, queue) in chip_queues.iter().enumerate() {
            for (k, &gi) in queue.iter().enumerate() {
                group_exec_cycles[gi] = executions[chip][k].cycles;
                group_execution[gi] = Some(executions[chip][k]);
            }
        }

        let timings = timeline(
            &groups,
            &outcome.assignment,
            config.chips,
            &group_exec_cycles,
            &cost.reload_cycles,
        );

        // --- request accounting -------------------------------------------
        let mut latencies: Vec<u64> = Vec::new();
        let mut deadline_misses = 0usize;
        let mut served_requests = 0usize;
        let mut per_chip: Vec<ChipServeStats> = (0..config.chips)
            .map(|chip| ChipServeStats {
                chip,
                groups: 0,
                requests: 0,
                busy_cycles: 0,
                utilization: 0.0,
            })
            .collect();
        let mut makespan = 0u64;
        for t in &timings {
            let group = &groups[t.group];
            makespan = makespan.max(t.finish_cycles);
            let stats = &mut per_chip[t.chip];
            stats.groups += 1;
            stats.requests += group.requests.len();
            stats.busy_cycles += t.finish_cycles - t.start_cycles;
            for &ri in &group.requests {
                served_requests += 1;
                latencies.push(t.finish_cycles - trace[ri].arrival_cycles);
                if t.finish_cycles > trace[ri].deadline_cycles {
                    deadline_misses += 1;
                }
            }
        }
        for stats in &mut per_chip {
            stats.utilization = if makespan == 0 {
                0.0
            } else {
                stats.busy_cycles as f64 / makespan as f64
            };
        }
        latencies.sort_unstable();

        // --- electrical aggregates (group order => deterministic) ---------
        let mut simulated_cycles = 0u64;
        let mut failures = 0u64;
        let mut power_weighted = 0.0f64;
        let mut weight = 0.0f64;
        let mut worst_irdrop_mv = 0.0f64;
        for exec in group_execution.iter().flatten() {
            let w = exec.cycles.max(1) as f64;
            simulated_cycles += exec.cycles;
            failures += exec.failures;
            power_weighted += exec.avg_macro_power_mw * w;
            weight += w;
            worst_irdrop_mv = worst_irdrop_mv.max(exec.worst_irdrop_mv);
        }

        let groups_executed = timings.len();
        let nominal_ghz = self.plans[0].chip_params().nominal_frequency_ghz;
        ServeReport {
            seed: config.seed,
            chips: config.chips,
            total_requests: trace.len(),
            served_requests,
            rejected_requests: outcome.rejected_requests,
            deadline_misses,
            groups_formed: groups.len(),
            groups_executed,
            mean_batch_size: if groups_executed == 0 {
                0.0
            } else {
                served_requests as f64 / groups_executed as f64
            },
            makespan_cycles: makespan,
            latency_p50_cycles: percentile_sorted(&latencies, 0.50),
            latency_p95_cycles: percentile_sorted(&latencies, 0.95),
            latency_p99_cycles: percentile_sorted(&latencies, 0.99),
            latency_max_cycles: latencies.last().copied().unwrap_or(0),
            throughput_rps: if makespan == 0 {
                0.0
            } else {
                served_requests as f64 / (makespan as f64 / (nominal_ghz * 1e9))
            },
            avg_macro_power_mw: if weight == 0.0 {
                0.0
            } else {
                power_weighted / weight
            },
            worst_irdrop_mv,
            failures,
            simulated_cycles,
            per_chip,
        }
    }

    /// Seed offset of one group's replay: distinct per group, folded with
    /// the serve seed, independent of chip assignment and worker count.
    fn replay_seed_offset(&self, group_idx: usize) -> u64 {
        self.config
            .seed
            .wrapping_add((group_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}
