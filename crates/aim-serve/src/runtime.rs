//! The serving runtime: compiled plans, fleet configuration, and the
//! offline convenience wrapper over the event-driven [`ServeSession`].

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use aim_core::analytical::AnalyticalPlan;
use aim_core::pipeline::{AimConfig, CompiledPlan};
use pim_sim::backend::{BackendKind, CalibrationLoopConfig};
use workloads::inputs::TraceRequest;
use workloads::zoo::Model;

use crate::report::ServeReport;
use crate::scheduler::{AdmissionConfig, CostModel, DispatchPolicy};
use crate::session::ServeSession;

/// Configuration of a serving runtime.
///
/// Construct via [`ServeConfig::builder`] (preferred), a struct literal over
/// [`ServeConfig::default`], or plain field assignment — the fields stay
/// public.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of simulated chips in the fleet (= chip workers).
    pub chips: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Batching window: a group absorbs same-model requests arriving within
    /// this many cycles of its first member.
    pub batch_window_cycles: u64,
    /// Weight-reload cost a model switch charges, per mapped macro slice of
    /// the incoming model.
    pub reload_cycles_per_slice: u64,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Optional admission control; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Execution backend of the fleet.  `CycleAccurate` keeps the historical
    /// behaviour; `Analytical` replays requests through each plan's
    /// calibrated closed-form prediction (compiled once per plan, then free
    /// per replay) except on the [`Self::audit_chips`].
    pub backend: BackendKind,
    /// With `backend: Analytical`, chips `0..audit_chips` stay on the
    /// cycle-accurate engine — a heterogeneous fleet (e.g. 2 audit chips +
    /// 30 analytical chips) whose audit members keep ground truth flowing.
    pub audit_chips: usize,
    /// Sampled verification: on average one in `verify_every` groups
    /// executing on an analytical chip (selected by a deterministic hash of
    /// the group's commit index and the serve seed, so the effective rate is
    /// independent of sharding) is *additionally* replayed cycle-accurately,
    /// and the relative cycle drift is aggregated into
    /// [`ServeReport::verification`].  0 disables.
    pub verify_every: usize,
    /// Optional online calibration loop: verification and audit-chip drift
    /// samples feed a per-model EWMA, and at fixed virtual-time boundaries
    /// the session recalibrates the analytical cycle prediction and
    /// demotes/promotes models between the fast path and cycle-accurate
    /// execution.  `None` (the default) keeps the one-shot offline
    /// calibration.  Only meaningful on fleets with analytical chips.
    ///
    /// [`ServeReport::calibration`] reports the loop's activity.
    ///
    /// [`ServeReport::calibration`]: crate::report::ServeReport::calibration
    pub calibration: Option<CalibrationLoopConfig>,
    /// Fan chip workers out across rayon scoped threads.  `false` runs the
    /// fleet on the calling thread; the report is byte-identical either way
    /// (the determinism contract).
    pub parallel: bool,
    /// Serve seed, folded into every request replay's input activity.
    pub seed: u64,
    /// Upper bound on *unpolled* [`RequestOutcome`]s a session retains
    /// between `poll_completions` calls; 0 (the default) keeps every
    /// outcome.  When the bound is hit the oldest unpolled outcome is
    /// dropped (counted by [`ServeSession::completions_dropped`]) — the
    /// drained report still accounts for every request, only the streamed
    /// outcome is shed.  Report-only hyperscale runs set a small cap so
    /// memory stays independent of the request count.
    ///
    /// [`RequestOutcome`]: crate::session::RequestOutcome
    /// [`ServeSession::completions_dropped`]: crate::session::ServeSession::completions_dropped
    pub completion_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            chips: 4,
            max_batch: 8,
            batch_window_cycles: 20_000,
            reload_cycles_per_slice: 32,
            dispatch: DispatchPolicy::LeastLoaded,
            admission: None,
            backend: BackendKind::CycleAccurate,
            audit_chips: 0,
            verify_every: 0,
            calibration: None,
            parallel: true,
            seed: 0xF1EE7,
            completion_capacity: 0,
        }
    }
}

impl ServeConfig {
    /// Starts a builder from the default configuration.
    #[must_use]
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Chainable builder for [`ServeConfig`]:
///
/// ```
/// use aim_serve::prelude::*;
///
/// let config = ServeConfig::builder()
///     .chips(8)
///     .backend(BackendKind::Analytical)
///     .audit_chips(2)
///     .verify_every(16)
///     .build();
/// assert_eq!(config.chips, 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $field(mut self, $field: $ty) -> Self {
                self.config.$field = $field;
                self
            }
        )*
    };
}

impl ServeConfigBuilder {
    builder_setters! {
        /// Sets the fleet size (see [`ServeConfig::chips`]).
        chips: usize,
        /// Sets the batch-size cap (see [`ServeConfig::max_batch`]).
        max_batch: usize,
        /// Sets the batching window (see [`ServeConfig::batch_window_cycles`]).
        batch_window_cycles: u64,
        /// Sets the per-slice reload cost (see
        /// [`ServeConfig::reload_cycles_per_slice`]).
        reload_cycles_per_slice: u64,
        /// Sets the dispatch policy (see [`ServeConfig::dispatch`]).
        dispatch: DispatchPolicy,
        /// Sets admission control (see [`ServeConfig::admission`]).
        admission: Option<AdmissionConfig>,
        /// Sets the execution backend (see [`ServeConfig::backend`]).
        backend: BackendKind,
        /// Sets the cycle-accurate audit-chip count (see
        /// [`ServeConfig::audit_chips`]).
        audit_chips: usize,
        /// Sets the sampled-verification cadence (see
        /// [`ServeConfig::verify_every`]).
        verify_every: usize,
        /// Enables the online calibration loop (see
        /// [`ServeConfig::calibration`]).
        calibration: Option<CalibrationLoopConfig>,
        /// Toggles the worker-thread fan-out (see [`ServeConfig::parallel`]).
        parallel: bool,
        /// Sets the serve seed (see [`ServeConfig::seed`]).
        seed: u64,
        /// Bounds the unpolled-outcome buffer (see
        /// [`ServeConfig::completion_capacity`]).
        completion_capacity: usize,
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero chips, zero `max_batch`,
    /// more audit chips than chips) — the same invariants
    /// [`ServeRuntime::from_plans`] enforces, failing at the construction
    /// site instead.
    #[must_use]
    pub fn build(self) -> ServeConfig {
        assert!(self.config.chips >= 1, "a fleet needs at least one chip");
        assert!(self.config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            self.config.audit_chips <= self.config.chips,
            "audit chips cannot exceed the fleet size"
        );
        if let Some(calibration) = &self.config.calibration {
            calibration.validate();
        }
        self.config
    }
}

/// A compiled model fleet plus its serving configuration.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    plans: Vec<CompiledPlan>,
    /// Calibrated analytical views of the plans, present iff the fleet has
    /// at least one analytical chip.
    analytical: Option<Vec<AnalyticalPlan>>,
    config: ServeConfig,
}

impl ServeRuntime {
    /// Compiles every model once (in parallel) and builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or the configuration is degenerate.
    #[must_use]
    pub fn compile(models: &[Model], aim: &AimConfig, config: ServeConfig) -> Self {
        assert!(!models.is_empty(), "a runtime needs at least one model");
        let plans: Vec<CompiledPlan> = models
            .par_iter()
            .map(|m| CompiledPlan::compile(m, aim))
            .collect();
        Self::from_plans(plans, config)
    }

    /// Builds the runtime from pre-compiled plans (e.g. per-model AIM
    /// configurations, or plans shared across runtimes).
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty or the configuration is degenerate.
    #[must_use]
    pub fn from_plans(plans: Vec<CompiledPlan>, config: ServeConfig) -> Self {
        assert!(!plans.is_empty(), "a runtime needs at least one plan");
        assert!(config.chips >= 1, "a fleet needs at least one chip");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.audit_chips <= config.chips,
            "audit chips cannot exceed the fleet size"
        );
        if let Some(calibration) = &config.calibration {
            calibration.validate();
        }
        // Calibrate the analytical views once, up front (a handful of
        // cycle-accurate probe runs per plan); afterwards every analytical
        // replay is a cached lookup.
        let analytical =
            if config.backend == BackendKind::Analytical && config.chips > config.audit_chips {
                Some(
                    plans
                        .par_iter()
                        .map(AnalyticalPlan::calibrate)
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };
        Self {
            plans,
            analytical,
            config,
        }
    }

    /// The compiled plans, indexed by model id.
    #[must_use]
    pub fn plans(&self) -> &[CompiledPlan] {
        &self.plans
    }

    /// The serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The calibrated analytical plan views, when the fleet has analytical
    /// chips.
    #[must_use]
    pub fn analytical_plans(&self) -> Option<&[AnalyticalPlan]> {
        self.analytical.as_deref()
    }

    /// Changes the sampled-verification cadence in place.
    #[deprecated(
        since = "0.1.0",
        note = "configure the cadence up front: `ServeConfig::builder().verify_every(n)` \
                (the cadence never re-runs calibration, so rebuilding the config is free)"
    )]
    pub fn set_verify_every(&mut self, verify_every: usize) {
        self.config.verify_every = verify_every;
    }

    /// Deliberately mis-calibrates `model`'s analytical view by scaling its
    /// predicted cycles (and fitted cycle scale) by `factor` — the
    /// fault-injection hook drift-detection tests and benches use to prove
    /// that the online calibration loop demotes a lying model.  No-op on a
    /// fleet without analytical plans.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range or `factor` is not a positive
    /// finite number.
    pub fn distort_model_calibration(&mut self, model: usize, factor: f64) {
        assert!(model < self.plans.len(), "model {model} has no plan");
        if let Some(analytical) = &mut self.analytical {
            analytical[model] = analytical[model].with_cycle_scale(factor);
        }
    }

    /// The backend chip `chip` executes with: the first
    /// [`ServeConfig::audit_chips`] chips of an analytical fleet stay
    /// cycle-accurate, everything else follows [`ServeConfig::backend`].
    #[must_use]
    pub fn chip_backend(&self, chip: usize) -> BackendKind {
        if self.analytical.is_some() && chip >= self.config.audit_chips {
            BackendKind::Analytical
        } else {
            BackendKind::CycleAccurate
        }
    }

    /// Number of chips running the analytical fast path.
    #[must_use]
    pub fn analytical_chip_count(&self) -> usize {
        if self.analytical.is_some() {
            self.config.chips - self.config.audit_chips
        } else {
            0
        }
    }

    /// The dispatcher's pre-execution cost model.  Execution-cycle estimates
    /// come from the calibrated analytical backend whenever the fleet has
    /// one, so admission control and analytical execution answer from the
    /// *same* cost source; a pure cycle-accurate fleet falls back to the
    /// plan's compile-time ideal estimate.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        let exec_cycles = match &self.analytical {
            Some(analytical) => analytical
                .iter()
                .map(AnalyticalPlan::estimated_cycles)
                .collect(),
            None => self
                .plans
                .iter()
                .map(CompiledPlan::estimated_cycles)
                .collect(),
        };
        CostModel {
            exec_cycles,
            reload_cycles: self
                .plans
                .iter()
                .map(|p| p.total_slices() as u64 * self.config.reload_cycles_per_slice)
                .collect(),
        }
    }

    /// Opens an event-driven [`ServeSession`] over the fleet — the online
    /// front door: `submit` requests as they arrive, `run_until` to step
    /// virtual time, `poll_completions` to stream outcomes, `drain` for the
    /// final report.
    #[must_use]
    pub fn session(&self) -> ServeSession<'_> {
        ServeSession::new(self)
    }

    /// Replays a complete request trace and returns the aggregated report —
    /// the offline convenience wrapper: it feeds every request into a fresh
    /// [`ServeSession`] and drains it, so the online and offline paths share
    /// one scheduler and produce byte-identical reports for the same input.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model the runtime has no plan for.
    #[must_use]
    pub fn serve(&self, trace: &[TraceRequest]) -> ServeReport {
        let mut session = self.session();
        for request in trace {
            session.submit(*request);
        }
        session.drain()
    }
}
