//! The serving runtime: a fleet of chip workers executing compiled plans
//! under the deterministic scheduler.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use aim_core::analytical::AnalyticalPlan;
use aim_core::pipeline::{AimConfig, CompiledPlan, PlanExecution};
use pim_sim::backend::BackendKind;
use pim_sim::chip::SimSession;
use workloads::inputs::TraceRequest;
use workloads::zoo::Model;

use crate::report::{percentile_sorted, ChipServeStats, ServeReport, VerificationStats};
use crate::scheduler::{
    dispatch, form_groups, timeline, AdmissionConfig, CostModel, DispatchPolicy,
};

/// Configuration of a serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of simulated chips in the fleet (= chip workers).
    pub chips: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Batching window: a group absorbs same-model requests arriving within
    /// this many cycles of its first member.
    pub batch_window_cycles: u64,
    /// Weight-reload cost a model switch charges, per mapped macro slice of
    /// the incoming model.
    pub reload_cycles_per_slice: u64,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Optional admission control; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Execution backend of the fleet.  `CycleAccurate` keeps the historical
    /// behaviour; `Analytical` replays requests through each plan's
    /// calibrated closed-form prediction (compiled once per plan, then free
    /// per replay) except on the [`Self::audit_chips`].
    pub backend: BackendKind,
    /// With `backend: Analytical`, chips `0..audit_chips` stay on the
    /// cycle-accurate engine — a heterogeneous fleet (e.g. 2 audit chips +
    /// 30 analytical chips) whose audit members keep ground truth flowing.
    pub audit_chips: usize,
    /// Sampled verification: every Nth group executing on an analytical chip
    /// (counted over those groups, in group order) is *additionally* replayed
    /// cycle-accurately, and the relative cycle drift is aggregated into
    /// [`ServeReport::verification`].  0 disables.
    pub verify_every: usize,
    /// Fan chip workers out across rayon scoped threads.  `false` runs the
    /// fleet on the calling thread; the report is byte-identical either way
    /// (the determinism contract).
    pub parallel: bool,
    /// Serve seed, folded into every request replay's input activity.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            chips: 4,
            max_batch: 8,
            batch_window_cycles: 20_000,
            reload_cycles_per_slice: 32,
            dispatch: DispatchPolicy::LeastLoaded,
            admission: None,
            backend: BackendKind::CycleAccurate,
            audit_chips: 0,
            verify_every: 0,
            parallel: true,
            seed: 0xF1EE7,
        }
    }
}

/// One sampled-verification measurement: a group executed analytically and
/// replayed cycle-accurately.
#[derive(Debug, Clone, Copy)]
struct VerifySample {
    group: usize,
    /// Model (= plan) the group belongs to, for the per-plan bound check.
    model: usize,
    analytical_cycles: u64,
    accurate_cycles: u64,
}

/// A compiled model fleet plus its serving configuration.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    plans: Vec<CompiledPlan>,
    /// Calibrated analytical views of the plans, present iff the fleet has
    /// at least one analytical chip.
    analytical: Option<Vec<AnalyticalPlan>>,
    config: ServeConfig,
}

impl ServeRuntime {
    /// Compiles every model once (in parallel) and builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or the configuration is degenerate.
    #[must_use]
    pub fn compile(models: &[Model], aim: &AimConfig, config: ServeConfig) -> Self {
        assert!(!models.is_empty(), "a runtime needs at least one model");
        let plans: Vec<CompiledPlan> = models
            .par_iter()
            .map(|m| CompiledPlan::compile(m, aim))
            .collect();
        Self::from_plans(plans, config)
    }

    /// Builds the runtime from pre-compiled plans (e.g. per-model AIM
    /// configurations, or plans shared across runtimes).
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty or the configuration is degenerate.
    #[must_use]
    pub fn from_plans(plans: Vec<CompiledPlan>, config: ServeConfig) -> Self {
        assert!(!plans.is_empty(), "a runtime needs at least one plan");
        assert!(config.chips >= 1, "a fleet needs at least one chip");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.audit_chips <= config.chips,
            "audit chips cannot exceed the fleet size"
        );
        // Calibrate the analytical views once, up front (a handful of
        // cycle-accurate probe runs per plan); afterwards every analytical
        // replay is a cached lookup.
        let analytical =
            if config.backend == BackendKind::Analytical && config.chips > config.audit_chips {
                Some(
                    plans
                        .par_iter()
                        .map(AnalyticalPlan::calibrate)
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };
        Self {
            plans,
            analytical,
            config,
        }
    }

    /// The compiled plans, indexed by model id.
    #[must_use]
    pub fn plans(&self) -> &[CompiledPlan] {
        &self.plans
    }

    /// The serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The calibrated analytical plan views, when the fleet has analytical
    /// chips.
    #[must_use]
    pub fn analytical_plans(&self) -> Option<&[AnalyticalPlan]> {
        self.analytical.as_deref()
    }

    /// Changes the sampled-verification cadence in place.  The cadence only
    /// selects which groups get a cycle-accurate comparison replay, so the
    /// plans and their calibrated analytical views are untouched — changing
    /// it never re-runs the calibration probes.
    pub fn set_verify_every(&mut self, verify_every: usize) {
        self.config.verify_every = verify_every;
    }

    /// The backend chip `chip` executes with: the first
    /// [`ServeConfig::audit_chips`] chips of an analytical fleet stay
    /// cycle-accurate, everything else follows [`ServeConfig::backend`].
    #[must_use]
    pub fn chip_backend(&self, chip: usize) -> BackendKind {
        if self.analytical.is_some() && chip >= self.config.audit_chips {
            BackendKind::Analytical
        } else {
            BackendKind::CycleAccurate
        }
    }

    /// Number of chips running the analytical fast path.
    #[must_use]
    pub fn analytical_chip_count(&self) -> usize {
        if self.analytical.is_some() {
            self.config.chips - self.config.audit_chips
        } else {
            0
        }
    }

    /// The dispatcher's pre-execution cost model.  Execution-cycle estimates
    /// come from the calibrated analytical backend whenever the fleet has
    /// one, so admission control and analytical execution answer from the
    /// *same* cost source; a pure cycle-accurate fleet falls back to the
    /// plan's compile-time ideal estimate.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        let exec_cycles = match &self.analytical {
            Some(analytical) => analytical
                .iter()
                .map(AnalyticalPlan::estimated_cycles)
                .collect(),
            None => self
                .plans
                .iter()
                .map(CompiledPlan::estimated_cycles)
                .collect(),
        };
        CostModel {
            exec_cycles,
            reload_cycles: self
                .plans
                .iter()
                .map(|p| p.total_slices() as u64 * self.config.reload_cycles_per_slice)
                .collect(),
        }
    }

    /// Replays a request trace through the fleet and returns the aggregated
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model the runtime has no plan for.
    #[must_use]
    pub fn serve(&self, trace: &[TraceRequest]) -> ServeReport {
        for r in trace {
            assert!(
                r.model < self.plans.len(),
                "request targets model {} but only {} plans are loaded",
                r.model,
                self.plans.len()
            );
        }
        let config = &self.config;
        let groups = form_groups(trace, config.max_batch, config.batch_window_cycles);
        let cost = self.cost_model();
        let outcome = dispatch(
            &groups,
            config.chips,
            config.dispatch,
            config.admission.as_ref(),
            &cost,
        );

        // Per-chip queues, in dispatch (= group) order.
        let mut chip_queues: Vec<Vec<usize>> = vec![Vec::new(); config.chips];
        for (gi, slot) in outcome.assignment.iter().enumerate() {
            if let Some(chip) = slot {
                chip_queues[*chip].push(gi);
            }
        }

        // Sampled-verification set: every `verify_every`th group *among
        // those executing on analytical chips*, counted in group order.
        // Counting over analytical executions (not raw group indices) keeps
        // the cadence honest when dispatch patterns alias with the sampling
        // stride — e.g. round-robin fleets where an audit chip would
        // otherwise soak up every sampled index.
        let verify_groups: std::collections::HashSet<usize> = if config.verify_every > 0 {
            outcome
                .assignment
                .iter()
                .enumerate()
                .filter_map(|(gi, slot)| slot.map(|chip| (gi, chip)))
                .filter(|&(_, chip)| self.chip_backend(chip) == BackendKind::Analytical)
                .enumerate()
                .filter(|(k, _)| k.is_multiple_of(config.verify_every))
                .map(|(_, (gi, _))| gi)
                .collect()
        } else {
            std::collections::HashSet::new()
        };

        // Chip workers: each runs its queue through one reusable SimSession.
        // Workers touch disjoint state and every replay is seeded from the
        // group index, so the fan-out cannot perturb results.  Analytical
        // chips hand out their plan's cached calibrated prediction (replay
        // cost ≈ 0) and, for every `verify_every`th group fleet-wide, also
        // replay it cycle-accurately to measure the realised drift.
        let run_worker =
            |(chip, queue): (usize, &Vec<usize>)| -> (Vec<PlanExecution>, Vec<VerifySample>) {
                let mut session = SimSession::new();
                let backend = self.chip_backend(chip);
                let mut verifications: Vec<VerifySample> = Vec::new();
                let execs = queue
                    .iter()
                    .map(|&gi| {
                        let group = &groups[gi];
                        match backend {
                            BackendKind::CycleAccurate => self.plans[group.model]
                                .execute_with_session(&mut session, self.replay_seed_offset(gi)),
                            BackendKind::Analytical => {
                                let predicted = self
                                    .analytical
                                    .as_ref()
                                    .expect("analytical chips imply calibrated plans")[group.model]
                                    .execution();
                                if verify_groups.contains(&gi) {
                                    let accurate = self.plans[group.model].execute_with_session(
                                        &mut session,
                                        self.replay_seed_offset(gi),
                                    );
                                    verifications.push(VerifySample {
                                        group: gi,
                                        model: group.model,
                                        analytical_cycles: predicted.cycles,
                                        accurate_cycles: accurate.cycles,
                                    });
                                }
                                predicted
                            }
                        }
                    })
                    .collect();
                (execs, verifications)
            };
        let worker_inputs: Vec<(usize, &Vec<usize>)> = chip_queues.iter().enumerate().collect();
        let outcomes: Vec<(Vec<PlanExecution>, Vec<VerifySample>)> = if config.parallel {
            worker_inputs.par_iter().map(|&w| run_worker(w)).collect()
        } else {
            worker_inputs.iter().map(|&w| run_worker(w)).collect()
        };
        let mut verify_samples: Vec<VerifySample> = Vec::new();
        let executions: Vec<Vec<PlanExecution>> = outcomes
            .into_iter()
            .map(|(execs, mut samples)| {
                verify_samples.append(&mut samples);
                execs
            })
            .collect();
        // Group order is deterministic; chip-queue order is an artifact of
        // the (deterministic) dispatch pass, but sort anyway so the report
        // never depends on aggregation order.
        verify_samples.sort_unstable_by_key(|s| s.group);

        // Scatter execution results back to group order.
        let mut group_exec_cycles = vec![0u64; groups.len()];
        let mut group_execution: Vec<Option<PlanExecution>> = vec![None; groups.len()];
        for (chip, queue) in chip_queues.iter().enumerate() {
            for (k, &gi) in queue.iter().enumerate() {
                group_exec_cycles[gi] = executions[chip][k].cycles;
                group_execution[gi] = Some(executions[chip][k]);
            }
        }

        let timings = timeline(
            &groups,
            &outcome.assignment,
            config.chips,
            &group_exec_cycles,
            &cost.reload_cycles,
        );

        // --- request accounting -------------------------------------------
        let mut latencies: Vec<u64> = Vec::new();
        let mut deadline_misses = 0usize;
        let mut served_requests = 0usize;
        let mut per_chip: Vec<ChipServeStats> = (0..config.chips)
            .map(|chip| ChipServeStats {
                chip,
                groups: 0,
                requests: 0,
                busy_cycles: 0,
                utilization: 0.0,
            })
            .collect();
        let mut makespan = 0u64;
        for t in &timings {
            let group = &groups[t.group];
            makespan = makespan.max(t.finish_cycles);
            let stats = &mut per_chip[t.chip];
            stats.groups += 1;
            stats.requests += group.requests.len();
            stats.busy_cycles += t.finish_cycles - t.start_cycles;
            for &ri in &group.requests {
                served_requests += 1;
                latencies.push(t.finish_cycles - trace[ri].arrival_cycles);
                if t.finish_cycles > trace[ri].deadline_cycles {
                    deadline_misses += 1;
                }
            }
        }
        for stats in &mut per_chip {
            stats.utilization = if makespan == 0 {
                0.0
            } else {
                stats.busy_cycles as f64 / makespan as f64
            };
        }
        latencies.sort_unstable();

        // --- electrical aggregates (group order => deterministic) ---------
        let mut simulated_cycles = 0u64;
        let mut failures = 0u64;
        let mut power_weighted = 0.0f64;
        let mut weight = 0.0f64;
        let mut worst_irdrop_mv = 0.0f64;
        for exec in group_execution.iter().flatten() {
            let w = exec.cycles.max(1) as f64;
            simulated_cycles += exec.cycles;
            failures += exec.failures;
            power_weighted += exec.avg_macro_power_mw * w;
            weight += w;
            worst_irdrop_mv = worst_irdrop_mv.max(exec.worst_irdrop_mv);
        }

        // --- sampled-verification drift ------------------------------------
        // `within_bound` holds each sample to *its own plan's* calibrated
        // bound (the promise `backend_fidelity` pins per plan); the reported
        // `error_bound` is the fleet-wide worst bound, for context.
        let verification = match &self.analytical {
            Some(analytical) if config.verify_every > 0 => {
                let error_bound = analytical
                    .iter()
                    .map(AnalyticalPlan::error_bound)
                    .fold(0.0f64, f64::max);
                let mut max_cycle_drift = 0.0f64;
                let mut drift_sum = 0.0f64;
                let mut within_bound = true;
                for s in &verify_samples {
                    let drift = (s.analytical_cycles as f64 - s.accurate_cycles as f64).abs()
                        / s.accurate_cycles.max(1) as f64;
                    max_cycle_drift = max_cycle_drift.max(drift);
                    drift_sum += drift;
                    if drift > analytical[s.model].error_bound() {
                        within_bound = false;
                    }
                }
                Some(VerificationStats {
                    sampled: verify_samples.len(),
                    mean_cycle_drift: if verify_samples.is_empty() {
                        0.0
                    } else {
                        drift_sum / verify_samples.len() as f64
                    },
                    max_cycle_drift,
                    error_bound,
                    // Zero samples is not a pass: a gate keyed on this field
                    // must never go green without a measurement.
                    within_bound: within_bound && !verify_samples.is_empty(),
                })
            }
            _ => None,
        };

        let groups_executed = timings.len();
        let nominal_ghz = self.plans[0].chip_params().nominal_frequency_ghz;
        ServeReport {
            seed: config.seed,
            chips: config.chips,
            total_requests: trace.len(),
            served_requests,
            rejected_requests: outcome.rejected_requests,
            deadline_misses,
            groups_formed: groups.len(),
            groups_executed,
            mean_batch_size: if groups_executed == 0 {
                0.0
            } else {
                served_requests as f64 / groups_executed as f64
            },
            makespan_cycles: makespan,
            latency_p50_cycles: percentile_sorted(&latencies, 0.50),
            latency_p95_cycles: percentile_sorted(&latencies, 0.95),
            latency_p99_cycles: percentile_sorted(&latencies, 0.99),
            latency_max_cycles: latencies.last().copied().unwrap_or(0),
            throughput_rps: if makespan == 0 {
                0.0
            } else {
                served_requests as f64 / (makespan as f64 / (nominal_ghz * 1e9))
            },
            avg_macro_power_mw: if weight == 0.0 {
                0.0
            } else {
                power_weighted / weight
            },
            worst_irdrop_mv,
            failures,
            simulated_cycles,
            analytical_chips: self.analytical_chip_count(),
            verification,
            per_chip,
        }
    }

    /// Seed offset of one group's replay: distinct per group, folded with
    /// the serve seed, independent of chip assignment and worker count.
    fn replay_seed_offset(&self, group_idx: usize) -> u64 {
        self.config
            .seed
            .wrapping_add((group_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}
