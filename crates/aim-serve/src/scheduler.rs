//! Deterministic scheduling primitives: dynamic batching, dispatch with
//! admission control, and virtual-time timeline reconstruction.
//!
//! All three stages are pure functions of their inputs — no wall clock, no
//! thread state — which is what lets the runtime fan execution out across
//! worker threads while keeping the final report byte-identical to a
//! single-worker run.

use serde::{Deserialize, Serialize};

use workloads::dag::DagTemplate;
use workloads::inputs::{SloClass, TraceRequest};

/// Policy choosing the chip each request group is dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Groups go to chips `0, 1, 2, …` cyclically, ignoring load.
    RoundRobin,
    /// Each group goes to the chip that can start it earliest (estimated
    /// free time vs the group's ready time; ties break to the lowest id).
    LeastLoaded,
}

/// Admission-control policy: bound how deep a chip's backlog may grow, per
/// SLO class.
///
/// A group is rejected when its chosen chip's estimated backlog (estimated
/// start time minus the group's ready time) exceeds the cap of the group's
/// class.  Separate caps let a fleet shed best-effort traffic early while
/// still bouncing latency-sensitive work that could no longer meet its SLO
/// anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Backlog cap (cycles) for [`SloClass::Standard`] groups.
    pub max_backlog_cycles: u64,
    /// Backlog cap for [`SloClass::LatencySensitive`] groups — typically
    /// *tighter* than standard: admitting latency-sensitive work into a deep
    /// queue breaks its promise, so bounce it instead.
    pub latency_sensitive_backlog_cycles: u64,
    /// Backlog cap for [`SloClass::BestEffort`] groups — typically looser:
    /// throughput traffic tolerates deep queues.
    pub best_effort_backlog_cycles: u64,
}

impl AdmissionConfig {
    /// One cap for every class (the pre-SLO behaviour).
    #[must_use]
    pub fn uniform(max_backlog_cycles: u64) -> Self {
        Self {
            max_backlog_cycles,
            latency_sensitive_backlog_cycles: max_backlog_cycles,
            best_effort_backlog_cycles: max_backlog_cycles,
        }
    }

    /// The backlog cap applied to a group of the given class.
    #[must_use]
    pub fn cap_for(&self, class: SloClass) -> u64 {
        match class {
            SloClass::BestEffort => self.best_effort_backlog_cycles,
            SloClass::Standard => self.max_backlog_cycles,
            SloClass::LatencySensitive => self.latency_sensitive_backlog_cycles,
        }
    }
}

/// A dynamically-batched group of same-model requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestGroup {
    /// Model index shared by every member.
    pub model: usize,
    /// Indices into the trace, in arrival order.
    pub requests: Vec<usize>,
    /// Arrival of the last member — the group cannot start earlier.
    pub ready_cycles: u64,
    /// Scheduling class of the group: the highest class of any member, so
    /// one latency-sensitive request lifts the whole batch it rides in.
    pub class: SloClass,
}

/// Coalesces **consecutive** same-model requests into batches — the
/// documented offline baseline.
///
/// A group opens at request `i` and absorbs following requests while they
/// target the same model, arrive within `window_cycles` of the group's first
/// arrival, and the group holds fewer than `max_batch` members.  The scan is
/// a pure function of the trace, so batching never depends on execution
/// timing.
///
/// Because the scan only looks at *consecutive* requests, an interleaved
/// trace (`A,B,A,B,…`) never batches at all even when every request lands
/// inside one window.  The online batcher inside
/// [`crate::session::ServeSession`] holds per-model pending queues instead
/// and therefore dominates this scan on batching ratio; `form_groups`
/// survives as the reference baseline that dominance is tested against.
///
/// # Panics
///
/// Panics if `max_batch` is zero.
#[must_use]
pub fn form_groups(
    trace: &[TraceRequest],
    max_batch: usize,
    window_cycles: u64,
) -> Vec<RequestGroup> {
    assert!(max_batch >= 1, "max_batch must be at least 1");
    let mut groups = Vec::new();
    let mut i = 0;
    while i < trace.len() {
        let first = &trace[i];
        let horizon = first.arrival_cycles.saturating_add(window_cycles);
        let mut j = i + 1;
        while j < trace.len()
            && j - i < max_batch
            && trace[j].model == first.model
            && trace[j].arrival_cycles <= horizon
        {
            j += 1;
        }
        groups.push(RequestGroup {
            model: first.model,
            requests: (i..j).collect(),
            ready_cycles: trace[j - 1].arrival_cycles,
            class: trace[i..j].iter().map(|r| r.slo).max().unwrap_or_default(),
        });
        i = j;
    }
    groups
}

/// Service time of one group on one chip: the single switching-cost formula
/// shared by admission/dispatch (with *estimated* execution cycles) and the
/// post-execution [`timeline`] (with *measured* ones).  A group of `b`
/// requests streams them back to back through macros already loaded with the
/// model's weights, so it costs one reload (if the chip switches model) plus
/// `b × exec` — batching amortises exactly the reload term.
#[must_use]
pub fn group_service_cycles(
    batch_size: usize,
    exec_cycles: u64,
    reload_cycles: u64,
    switching_model: bool,
) -> u64 {
    let reload = if switching_model { reload_cycles } else { 0 };
    reload + batch_size as u64 * exec_cycles
}

/// The dispatcher's pre-execution cost model.
///
/// `exec_cycles` comes from the runtime's cost source: the plan's
/// compile-time ideal estimate for a cycle-accurate fleet, or the calibrated
/// analytical backend's predicted cycles when the fleet executes
/// analytically — so admission control and execution share one cost model
/// rather than maintaining duplicated arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Estimated execution cycles for one request replay, per model.
    pub exec_cycles: Vec<u64>,
    /// Weight-reload cycles charged when a chip switches to the model.
    pub reload_cycles: Vec<u64>,
}

impl CostModel {
    /// Estimated busy cycles a group costs its chip
    /// (via [`group_service_cycles`]).
    #[must_use]
    pub fn group_cycles(&self, group: &RequestGroup, switching_model: bool) -> u64 {
        group_service_cycles(
            group.requests.len(),
            self.exec_cycles[group.model],
            self.reload_cycles[group.model],
            switching_model,
        )
    }
}

/// Result of the dispatch pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchOutcome {
    /// Per group: the chip it runs on, or `None` if admission control
    /// rejected it.
    pub assignment: Vec<Option<usize>>,
    /// Number of *requests* (not groups) rejected.
    pub rejected_requests: usize,
}

/// Assigns each group to a chip (or rejects it), in group order.
///
/// The pass tracks each chip's estimated free time and last-loaded model
/// using only the [`CostModel`]; actual execution results never feed back,
/// so the assignment is deterministic and worker-count independent.
///
/// # Panics
///
/// Panics if `chips` is zero.
#[must_use]
pub fn dispatch(
    groups: &[RequestGroup],
    chips: usize,
    policy: DispatchPolicy,
    admission: Option<&AdmissionConfig>,
    cost: &CostModel,
) -> DispatchOutcome {
    assert!(chips >= 1, "a fleet needs at least one chip");
    let mut est_free = vec![0u64; chips];
    let mut last_model: Vec<Option<usize>> = vec![None; chips];
    let mut next_round_robin = 0usize;
    let mut assignment = Vec::with_capacity(groups.len());
    let mut rejected_requests = 0usize;

    for group in groups {
        let chip = match policy {
            DispatchPolicy::RoundRobin => {
                let c = next_round_robin % chips;
                next_round_robin += 1;
                c
            }
            DispatchPolicy::LeastLoaded => (0..chips)
                .min_by_key(|&c| (est_free[c].max(group.ready_cycles), c))
                .expect("chips >= 1"),
        };
        if let Some(adm) = admission {
            let backlog = est_free[chip].saturating_sub(group.ready_cycles);
            if backlog > adm.cap_for(group.class) {
                assignment.push(None);
                rejected_requests += group.requests.len();
                continue;
            }
        }
        let switching = last_model[chip] != Some(group.model);
        let duration = cost.group_cycles(group, switching);
        let start = est_free[chip].max(group.ready_cycles);
        est_free[chip] = start + duration;
        last_model[chip] = Some(group.model);
        assignment.push(Some(chip));
    }
    DispatchOutcome {
        assignment,
        rejected_requests,
    }
}

/// Splits a whole-DAG deadline into per-stage deadlines, proportionally to
/// each stage's position on its critical path.
///
/// For stage `s` with think gap `gap(s)` and estimated execution
/// `est(s) = cost.exec_cycles[model(s)]`, the critical-path length through
/// `s` is
///
/// ```text
/// L(s) = max over parents p of (L(p) + gap(s)) + est(s)      (roots: est(s))
/// ```
///
/// and the stage's deadline is `arrival + slack · L(s) / L_max`, where
/// `slack = deadline − arrival` and `L_max = max L(s)` — so every tail
/// stage's budget lands exactly on the DAG deadline and upstream stages get
/// budgets in proportion to how much of the critical path they consume.
/// The division runs in `u128`, so huge slacks cannot overflow.  Reload
/// charges are deliberately excluded: they depend on which chip the group
/// lands on, and the split must be a pure function of the template.
///
/// A degenerate all-zero-cost DAG (every `L(s)` = 0) grants every stage the
/// full deadline.
///
/// # Panics
///
/// Panics if `gaps` is not one gap per stage, or a stage's model has no
/// cost entry.
#[must_use]
pub fn split_dag_deadline(
    template: &DagTemplate,
    gaps: &[u64],
    cost: &CostModel,
    arrival_cycles: u64,
    deadline_cycles: u64,
) -> Vec<u64> {
    assert_eq!(gaps.len(), template.stages.len(), "one think gap per stage");
    let slack = deadline_cycles.saturating_sub(arrival_cycles);
    let mut path = vec![0u64; template.stages.len()];
    for (i, stage) in template.stages.iter().enumerate() {
        let upstream = stage
            .parents
            .iter()
            .map(|&p| path[p].saturating_add(gaps[i]))
            .max()
            .unwrap_or(0);
        path[i] = upstream.saturating_add(cost.exec_cycles[stage.model]);
    }
    let longest = path.iter().copied().max().unwrap_or(0);
    path.iter()
        .map(|&l| {
            if longest == 0 {
                deadline_cycles
            } else {
                let share = u128::from(slack) * u128::from(l) / u128::from(longest);
                arrival_cycles.saturating_add(share as u64)
            }
        })
        .collect()
}

/// Virtual-time schedule entry for one executed group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupTiming {
    /// Group index.
    pub group: usize,
    /// Chip the group ran on.
    pub chip: usize,
    /// Cycle the chip began the group (reload included).
    pub start_cycles: u64,
    /// Cycle the group's last request completed.
    pub finish_cycles: u64,
}

/// Reconstructs each executed group's start/finish once the actual per-group
/// execution cycles are known, replaying each chip's queue in dispatch order.
///
/// `group_exec_cycles[g]` is the measured cycles of one request replay of
/// group `g`; a group of `b` requests streams them back to back, so its
/// service time is `reload + b × exec` — batching amortises exactly the
/// reload term.
#[must_use]
pub fn timeline(
    groups: &[RequestGroup],
    assignment: &[Option<usize>],
    chips: usize,
    group_exec_cycles: &[u64],
    reload_cycles_per_model: &[u64],
) -> Vec<GroupTiming> {
    let mut free = vec![0u64; chips];
    let mut last_model: Vec<Option<usize>> = vec![None; chips];
    let mut out = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let Some(chip) = assignment[gi] else {
            continue;
        };
        let switching = last_model[chip] != Some(group.model);
        let duration = group_service_cycles(
            group.requests.len(),
            group_exec_cycles[gi],
            reload_cycles_per_model[group.model],
            switching,
        );
        let start = free[chip].max(group.ready_cycles);
        let finish = start + duration;
        free[chip] = finish;
        last_model[chip] = Some(group.model);
        out.push(GroupTiming {
            group: gi,
            chip,
            start_cycles: start,
            finish_cycles: finish,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(model: usize, arrival: u64) -> TraceRequest {
        TraceRequest {
            model,
            arrival_cycles: arrival,
            deadline_cycles: arrival + 1_000_000,
            slo: SloClass::Standard,
        }
    }

    fn flat_cost(exec: u64, reload: u64, models: usize) -> CostModel {
        CostModel {
            exec_cycles: vec![exec; models],
            reload_cycles: vec![reload; models],
        }
    }

    #[test]
    fn groups_split_on_model_change_window_and_batch_cap() {
        let trace = vec![
            req(0, 0),
            req(0, 10),
            req(0, 10_000), // outside the window -> new group
            req(1, 10_010), // model change -> new group
            req(1, 10_020),
            req(1, 10_030),
            req(1, 10_040), // 4th member but max_batch = 3 -> new group
        ];
        let groups = form_groups(&trace, 3, 1_000);
        let shapes: Vec<(usize, usize)> =
            groups.iter().map(|g| (g.model, g.requests.len())).collect();
        assert_eq!(shapes, [(0, 2), (0, 1), (1, 3), (1, 1)]);
        assert_eq!(groups[0].ready_cycles, 10);
        assert_eq!(groups[2].requests, vec![3, 4, 5]);
    }

    #[test]
    fn window_zero_batches_only_simultaneous_same_model_arrivals() {
        // A zero window still coalesces requests that arrive on the *same*
        // cycle as the group opener; anything later opens a new group.
        let trace = vec![req(0, 5), req(0, 5), req(0, 6), req(1, 6), req(1, 6)];
        let groups = form_groups(&trace, 8, 0);
        let shapes: Vec<(usize, usize)> =
            groups.iter().map(|g| (g.model, g.requests.len())).collect();
        assert_eq!(shapes, [(0, 2), (0, 1), (1, 2)]);
        let total: usize = groups.iter().map(|g| g.requests.len()).sum();
        assert_eq!(total, trace.len(), "window 0 must not drop requests");
    }

    #[test]
    fn max_batch_one_degenerates_to_singleton_groups() {
        let trace: Vec<TraceRequest> = (0..9).map(|i| req(0, i as u64)).collect();
        let groups = form_groups(&trace, 1, u64::MAX);
        assert_eq!(groups.len(), trace.len());
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.requests, vec![i]);
            assert_eq!(g.ready_cycles, trace[i].arrival_cycles);
        }
    }

    #[test]
    fn service_cycles_formula_is_shared_by_cost_model_and_timeline() {
        // One arithmetic source: the cost model's estimate and the timeline's
        // measured duration agree whenever estimate == measurement.
        let trace: Vec<TraceRequest> = (0..3).map(|i| req(0, i)).collect();
        let groups = form_groups(&trace, 8, 1_000);
        assert_eq!(groups.len(), 1);
        let cost = flat_cost(250, 700, 1);
        let estimated = cost.group_cycles(&groups[0], true);
        let timings = timeline(&groups, &[Some(0)], 1, &[250], &[700]);
        assert_eq!(
            timings[0].finish_cycles - timings[0].start_cycles,
            estimated
        );
        assert_eq!(estimated, group_service_cycles(3, 250, 700, true));
        assert_eq!(group_service_cycles(3, 250, 700, false), 750);
    }

    #[test]
    fn every_request_lands_in_exactly_one_group() {
        let trace: Vec<TraceRequest> = (0..57).map(|i| req(i % 3, i as u64 * 13)).collect();
        let groups = form_groups(&trace, 4, 40);
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.requests.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_cycles_through_chips() {
        let trace = vec![req(0, 0), req(1, 1), req(0, 2), req(1, 3)];
        let groups = form_groups(&trace, 1, 0);
        let out = dispatch(
            &groups,
            3,
            DispatchPolicy::RoundRobin,
            None,
            &flat_cost(100, 0, 2),
        );
        let chips: Vec<usize> = out.assignment.iter().map(|a| a.unwrap()).collect();
        assert_eq!(chips, [0, 1, 2, 0]);
        assert_eq!(out.rejected_requests, 0);
    }

    #[test]
    fn least_loaded_prefers_the_idle_chip() {
        // Three heavy groups arriving together on 2 chips: the third must go
        // to whichever chip frees first; with equal costs that is chip 0
        // (lowest id tie-break loses to earliest free time only).
        let trace = vec![req(0, 0), req(1, 0), req(0, 0)];
        let groups = form_groups(&trace, 1, 0);
        let out = dispatch(
            &groups,
            2,
            DispatchPolicy::LeastLoaded,
            None,
            &flat_cost(500, 100, 2),
        );
        let chips: Vec<usize> = out.assignment.iter().map(|a| a.unwrap()).collect();
        assert_eq!(chips, [0, 1, 0]);
    }

    #[test]
    fn admission_control_rejects_deep_backlogs() {
        // One chip, instantaneous arrivals, each group costs 1000 cycles:
        // backlog grows by 1000 per group, so with a 2500-cycle cap the 4th
        // group (backlog 3000) is rejected.
        let trace: Vec<TraceRequest> = (0..5).map(|i| req(i % 2, 0)).collect();
        let groups = form_groups(&trace, 1, 0);
        let out = dispatch(
            &groups,
            1,
            DispatchPolicy::LeastLoaded,
            Some(&AdmissionConfig::uniform(2_500)),
            &flat_cost(1_000, 0, 2),
        );
        assert_eq!(out.assignment[0], Some(0));
        assert_eq!(out.assignment[3], None);
        assert_eq!(out.assignment[4], None);
        assert_eq!(out.rejected_requests, 2);
    }

    #[test]
    fn admission_caps_apply_per_slo_class() {
        // Same backlog, different fates: best-effort is shed at a tight cap
        // while a standard group with identical timing is admitted.
        let mut trace: Vec<TraceRequest> = (0..4).map(|_| req(0, 0)).collect();
        trace[3].slo = SloClass::BestEffort;
        let groups = form_groups(&trace, 1, 0);
        let admission = AdmissionConfig {
            max_backlog_cycles: 10_000,
            latency_sensitive_backlog_cycles: 500,
            best_effort_backlog_cycles: 1_500,
        };
        let out = dispatch(
            &groups,
            1,
            DispatchPolicy::LeastLoaded,
            Some(&admission),
            &flat_cost(1_000, 0, 1),
        );
        // Groups cost 1000 cycles each; the 4th sees a 3000-cycle backlog —
        // over its 1500-cycle best-effort cap, under the standard cap the
        // 3rd (backlog 2000, standard) was admitted with.
        assert_eq!(out.assignment[2], Some(0));
        assert_eq!(out.assignment[3], None);
        assert_eq!(out.rejected_requests, 1);
    }

    #[test]
    fn one_latency_sensitive_member_lifts_the_group_class() {
        let mut trace = vec![req(0, 0), req(0, 5), req(0, 9)];
        trace[1].slo = SloClass::LatencySensitive;
        trace[2].slo = SloClass::BestEffort;
        let groups = form_groups(&trace, 8, 1_000);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].class, SloClass::LatencySensitive);
    }

    #[test]
    fn timeline_charges_reload_only_on_model_switch() {
        let trace = vec![req(0, 0), req(0, 5_000), req(1, 5_100)];
        let groups = form_groups(&trace, 1, 0);
        let assignment = vec![Some(0), Some(0), Some(0)];
        let timings = timeline(&groups, &assignment, 1, &[100, 100, 100], &[400, 900]);
        // Group 0: reload 400 + 100 exec, starts at 0.
        assert_eq!(timings[0].start_cycles, 0);
        assert_eq!(timings[0].finish_cycles, 500);
        // Group 1: same model, no reload; chip idle until arrival.
        assert_eq!(timings[1].start_cycles, 5_000);
        assert_eq!(timings[1].finish_cycles, 5_100);
        // Group 2: model switch -> 900-cycle reload.
        assert_eq!(timings[2].start_cycles, 5_100);
        assert_eq!(timings[2].finish_cycles, 5_100 + 900 + 100);
    }

    #[test]
    fn batched_groups_amortise_the_reload() {
        // 4 requests in one group: one reload, 4 executions.
        let trace: Vec<TraceRequest> = (0..4).map(|i| req(0, i)).collect();
        let groups = form_groups(&trace, 8, 1_000);
        assert_eq!(groups.len(), 1);
        let timings = timeline(&groups, &[Some(0)], 1, &[200], &[1_000]);
        assert_eq!(
            timings[0].finish_cycles - timings[0].start_cycles,
            1_000 + 4 * 200
        );
    }

    #[test]
    fn rejected_groups_leave_no_timeline_entry() {
        let trace = vec![req(0, 0), req(0, 0)];
        let groups = form_groups(&trace, 1, 0);
        let timings = timeline(&groups, &[Some(0), None], 1, &[50, 50], &[10]);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].group, 0);
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chip_fleet_is_rejected() {
        let _ = dispatch(
            &[],
            0,
            DispatchPolicy::RoundRobin,
            None,
            &flat_cost(1, 0, 1),
        );
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_is_rejected() {
        let _ = form_groups(&[], 0, 0);
    }

    #[test]
    fn deadline_split_is_critical_path_proportional() {
        use workloads::dag::DagTemplate;
        // Cascade of 3 equal-cost stages, no gaps: budgets at 1/3, 2/3, 3/3
        // of the slack, with the tail landing exactly on the DAG deadline.
        let template = DagTemplate::cascade("c", &[0, 0, 0]);
        let cost = flat_cost(1_000, 500, 1);
        let split = split_dag_deadline(&template, &[0, 0, 0], &cost, 10_000, 40_000);
        assert_eq!(split, vec![20_000, 30_000, 40_000]);
    }

    #[test]
    fn deadline_split_charges_think_gaps_to_the_path() {
        use workloads::dag::DagTemplate;
        // Two-turn conversation: exec 1000 each, gap 2000 before turn 2.
        // Paths are 1000 and 4000, so turn 1 gets 1/4 of the slack.
        let template = DagTemplate::conversation("chat", 0, 2, 1);
        let cost = flat_cost(1_000, 0, 1);
        let split = split_dag_deadline(&template, &[0, 2_000], &cost, 0, 8_000);
        assert_eq!(split, vec![2_000, 8_000]);
    }

    #[test]
    fn deadline_split_follows_the_longest_parent_into_a_join() {
        use workloads::dag::DagTemplate;
        // Fan-out with unequal branches (500 vs 2000): the join's path runs
        // through the slow branch, and the fast branch keeps a small budget.
        let template = DagTemplate::fan_out_join("f", 0, &[1, 2], 0);
        let cost = CostModel {
            exec_cycles: vec![1_000, 500, 2_000],
            reload_cycles: vec![0, 0, 0],
        };
        let split = split_dag_deadline(&template, &[0; 4], &cost, 0, 8_000);
        // Paths: 1000, 1500, 3000, 4000 -> slack shares 2000/3000/6000/8000.
        assert_eq!(split, vec![2_000, 3_000, 6_000, 8_000]);
    }

    #[test]
    fn zero_cost_dags_grant_every_stage_the_full_deadline() {
        use workloads::dag::DagTemplate;
        let template = DagTemplate::cascade("z", &[0, 0]);
        let cost = flat_cost(0, 0, 1);
        let split = split_dag_deadline(&template, &[0, 0], &cost, 5, 99);
        assert_eq!(split, vec![99, 99]);
    }
}
