//! The serializable outcome of one serving run: request accounting, latency
//! percentiles, per-chip and per-SLO-class splits, chip-level electrical
//! aggregates — plus the incremental [`ReportAccumulator`] the event-driven
//! session feeds group by group (and [`ReportAccumulator::merge`]s across
//! sharded sessions) before freezing a [`ServeReport`].
//!
//! The accumulator is **bounded**: latency distributions live in a
//! fixed-size [`LatencySketch`] and the electrical/verification folds keep
//! integer running aggregates, so absorbing ten requests and absorbing ten
//! million cost the same memory.  All aggregate state is associative and
//! order-free (integer sums, maxima, element-wise bucket adds), which is
//! what makes [`ReportAccumulator::merge`] byte-stable across shard
//! groupings.

use serde::{Deserialize, Serialize};

use aim_core::pipeline::PlanExecution;
use workloads::inputs::SloClass;

/// Drift statistics of the sampled-verification mode: every Nth request
/// group executed on an analytical chip is additionally replayed through the
/// cycle-accurate engine, and the relative cycle-count drift between the two
/// backends is recorded here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerificationStats {
    /// Number of groups replayed cycle-accurately for verification.
    pub sampled: usize,
    /// Mean relative cycle drift `|analytical - accurate| / accurate` over
    /// the sampled groups (0 when nothing was sampled).  Accumulated in
    /// fixed point (parts per 10^12), so the mean is quantized to 1e-12 —
    /// far below any calibrated bound — in exchange for an order-free sum.
    pub mean_cycle_drift: f64,
    /// Worst relative cycle drift observed.
    pub max_cycle_drift: f64,
    /// The fleet's error bound: the worst self-reported calibration bound
    /// over the served analytical plans.
    pub error_bound: f64,
    /// Whether drift was actually measured (`sampled > 0`) *and* every
    /// observed drift stayed within its own plan's calibrated bound
    /// (stricter than comparing against the fleet-wide `error_bound` when
    /// plans carry different bounds).  `false` with `sampled == 0` means no
    /// analytical group got verified — never treat that as a pass.
    pub within_bound: bool,
}

/// Activity of the online calibration loop
/// ([`ServeConfig::calibration`]): drift samples folded into the per-model
/// EWMAs, recalibrations applied at virtual-time boundaries, and the
/// demotion/promotion traffic between the analytical fast path and
/// cycle-accurate execution.  Counters merge counter-for-counter across
/// shards; the EWMA figure folds through `max` (the worst shard's
/// excursion).
///
/// [`ServeConfig::calibration`]: crate::runtime::ServeConfig::calibration
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationStats {
    /// Drift samples folded into the loop (verification replays, audit-chip
    /// replays, demoted-model executions).
    pub samples: u64,
    /// Recalibrations applied (per model, per boundary with fresh samples).
    pub recalibrations: u64,
    /// Models demoted to cycle-accurate execution (counting repeats).
    pub demotions: u64,
    /// Demoted models promoted back to the analytical fast path.
    pub promotions: u64,
    /// Worst absolute EWMA drift observed by any model on any shard.
    pub max_abs_ewma_drift: f64,
    /// Per-model loop state, indexed by model id.
    pub per_model: Vec<ModelCalibration>,
}

/// One model's row in [`CalibrationStats`]: its drift history against its
/// own calibrated bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelCalibration {
    /// Model id the row describes.
    pub model: usize,
    /// Drift samples the model's EWMA absorbed.
    pub samples: u64,
    /// Recalibrations applied to the model's cycle prediction.
    pub recalibrations: u64,
    /// Times the model demoted to cycle-accurate execution.
    pub demotions: u64,
    /// Times the model promoted back to the analytical fast path.
    pub promotions: u64,
    /// Whether the model was still demoted when the session drained (on any
    /// merged shard).
    pub demoted: bool,
    /// The model's self-reported calibrated error bound — the line its EWMA
    /// drift is judged against.
    pub error_bound: f64,
    /// Worst absolute EWMA drift the model reached on any shard.
    pub max_abs_ewma_drift: f64,
}

/// Per-SLO-class serving statistics: the latency split that shows whether
/// priority scheduling actually protected the latency-sensitive tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassServeStats {
    /// The class the row describes.
    pub class: SloClass,
    /// Requests of this class in the trace.
    pub total: usize,
    /// Requests of this class executed to completion.
    pub served: usize,
    /// Requests of this class rejected by admission control.
    pub rejected: usize,
    /// Served requests of this class that finished past their deadline.
    pub deadline_misses: usize,
    /// Median served latency of the class (cycles, sketch-quantized).
    pub latency_p50_cycles: u64,
    /// 99th-percentile served latency of the class (cycles,
    /// sketch-quantized).
    pub latency_p99_cycles: u64,
}

/// Per-chip serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipServeStats {
    /// Chip index within the fleet.
    pub chip: usize,
    /// Request groups the chip executed.
    pub groups: usize,
    /// Requests the chip served (sum of its groups' batch sizes).
    pub requests: usize,
    /// Cycles the chip spent busy (reload + execution).
    pub busy_cycles: u64,
    /// `busy_cycles / makespan_cycles` — 0 when the run is empty.
    pub utilization: f64,
}

/// Aggregated outcome of one serving run.
///
/// Every field derives from the trace, the serve configuration and
/// deterministic simulation — a fixed seed and configuration reproduce the
/// report byte for byte, independent of the worker-thread count.
///
/// Latency percentiles come from a [`LatencySketch`], so they are upper
/// bounds on the exact nearest-rank values with relative error at most
/// `1/32` (~3.125%); `latency_max_cycles` stays exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Serve seed the run used.
    pub seed: u64,
    /// Number of chips in the fleet.
    pub chips: usize,
    /// Requests in the replayed trace.
    pub total_requests: usize,
    /// Requests executed to completion.
    pub served_requests: usize,
    /// Requests rejected by admission control.
    pub rejected_requests: usize,
    /// Served requests that finished past their deadline.
    pub deadline_misses: usize,
    /// Request groups formed by dynamic batching.
    pub groups_formed: usize,
    /// Groups actually executed (formed minus rejected).
    pub groups_executed: usize,
    /// Mean executed batch size (`served / groups_executed`).
    pub mean_batch_size: f64,
    /// Virtual completion time of the last group (cycles).
    pub makespan_cycles: u64,
    /// Median served latency (cycles, arrival to group completion).
    pub latency_p50_cycles: u64,
    /// 95th-percentile served latency (cycles).
    pub latency_p95_cycles: u64,
    /// 99th-percentile served latency (cycles).
    pub latency_p99_cycles: u64,
    /// Worst served latency (cycles, exact).
    pub latency_max_cycles: u64,
    /// Served requests per second of virtual time at the nominal frequency.
    pub throughput_rps: f64,
    /// Mean per-macro power over all executed simulation cycles (mW).
    pub avg_macro_power_mw: f64,
    /// Worst droop observed anywhere in the fleet (mV).
    pub worst_irdrop_mv: f64,
    /// Total IRFailures raised across the fleet.
    pub failures: u64,
    /// Total simulated chip cycles across all executions.
    pub simulated_cycles: u64,
    /// Chips running the analytical fast path (0 for a homogeneous
    /// cycle-accurate fleet).
    pub analytical_chips: usize,
    /// Sampled-verification drift statistics; `Some` whenever the fleet has
    /// analytical chips and verification was enabled.
    pub verification: Option<VerificationStats>,
    /// Online calibration-loop activity; `Some` whenever the fleet has
    /// analytical chips and [`ServeConfig::calibration`] was set.
    ///
    /// [`ServeConfig::calibration`]: crate::runtime::ServeConfig::calibration
    pub calibration: Option<CalibrationStats>,
    /// Per-chip statistics, indexed by chip id.
    pub per_chip: Vec<ChipServeStats>,
    /// Per-SLO-class statistics, in ascending priority order
    /// (best-effort, standard, latency-sensitive).
    pub per_class: Vec<ClassServeStats>,
}

/// Nearest rank (1-based) of quantile `q` in a sample of `len` elements,
/// computed entirely in integer arithmetic.
///
/// `q` is quantized to parts-per-billion first, which captures every
/// decimal quantile anyone writes (0.5, 0.95, 0.999, ...) exactly; the
/// rank is then `ceil(q_ppb * len / 1e9)` — no float product, so no
/// representation-boundary mis-rank at large `len` (the old
/// `(q * len as f64).ceil()` path returns rank 210_001 instead of 210_000
/// for `q = 0.07, len = 3_000_000`).
fn nearest_rank(len: usize, q: f64) -> usize {
    debug_assert!(q.is_finite());
    let q_ppb = (q.clamp(0.0, 1.0) * 1e9).round() as u128;
    let rank = (q_ppb * len as u128).div_ceil(1_000_000_000) as usize;
    rank.clamp(1, len.max(1))
}

/// Nearest-rank percentile of an ascending-sorted sample (`q` in `(0, 1]`).
/// Returns 0 for an empty sample.  The rank is computed in integer
/// arithmetic (see [`nearest_rank`]); results are exact, unlike the
/// sketch-quantized percentiles in [`ServeReport`].
#[must_use]
pub fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[nearest_rank(sorted.len(), q) - 1]
}

/// Sub-bucket resolution: 2^5 = 32 buckets per octave, giving a one-sided
/// relative quantile error of at most `1/32` (~3.125%).
const SKETCH_SUB_BITS: u32 = 5;
const SKETCH_SUB_BUCKETS: usize = 1 << SKETCH_SUB_BITS;
/// Octaves above the linear range: values up to `u64::MAX` land in octave
/// `63 - SKETCH_SUB_BITS = 58`, so 59 octaves of 32 buckets follow the 32
/// exact linear buckets.
const SKETCH_OCTAVES: usize = 64 - SKETCH_SUB_BITS as usize;
/// Total bucket count: 32 linear + 59 × 32 log buckets = 1920.
const SKETCH_BUCKETS: usize = SKETCH_SUB_BUCKETS * (1 + SKETCH_OCTAVES);

/// A deterministic fixed-bucket quantile sketch for `u64` latency samples.
///
/// HDR-histogram layout: values below 64 are recorded exactly (the first
/// two rows of buckets have width 1); above that, each octave `[2^k,
/// 2^(k+1))` splits into 32 equal-width buckets, so a quantile read
/// over-estimates the exact nearest-rank value by less than `1/32` of it.
/// Memory is a flat `1920 × u64` count array (~15 KiB) regardless of how
/// many samples are recorded — the point of the sketch.
///
/// Quantile reads report the **upper bound** of the selected bucket,
/// clamped to the exact tracked maximum: `exact ≤ sketch ≤ exact * 33/32`,
/// and `percentile(q)` never exceeds [`Self::max`].
///
/// [`Self::merge`] adds count arrays element-wise and takes the larger
/// maximum, making it associative *and* commutative — shards combine into
/// byte-identical sketches in any order or grouping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySketch {
    count: u64,
    max: u64,
    counts: Vec<u64>,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    /// Documented one-sided relative error denominator: quantile reads
    /// over-estimate by at most `1/SKETCH_ERROR_DENOM` of the exact value.
    pub const ERROR_DENOM: u64 = SKETCH_SUB_BUCKETS as u64;

    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            max: 0,
            counts: vec![0; SKETCH_BUCKETS],
        }
    }

    /// Bucket index of `value`: exact below 64, then 32 buckets per octave.
    fn bucket_index(value: u64) -> usize {
        if value < SKETCH_SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = (63 - value.leading_zeros() - SKETCH_SUB_BITS) as usize;
        let sub = ((value >> octave) as usize) - SKETCH_SUB_BUCKETS;
        SKETCH_SUB_BUCKETS + octave * SKETCH_SUB_BUCKETS + sub
    }

    /// Largest value mapping to bucket `index` (the quantile
    /// representative).
    fn bucket_upper(index: usize) -> u64 {
        if index < SKETCH_SUB_BUCKETS {
            return index as u64;
        }
        let octave = (index - SKETCH_SUB_BUCKETS) / SKETCH_SUB_BUCKETS;
        let sub = ((index - SKETCH_SUB_BUCKETS) % SKETCH_SUB_BUCKETS) as u64;
        ((SKETCH_SUB_BUCKETS as u64 + sub) << octave) + ((1u64 << octave) - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank quantile read (`q` in `(0, 1]`; 0 when empty): the
    /// upper bound of the bucket holding the rank, clamped to the exact
    /// maximum.  Over-estimates the exact nearest-rank value by at most
    /// `1/32` of it and is monotone in `q`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank(self.count as usize, q) as u64;
        let mut cumulative = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Folds another sketch into this one: counts add element-wise, the
    /// maximum is the larger of the two.  Associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }
}

/// Fixed-point scale for the cycle-weighted power sum: micro-(mW·cycles).
/// Rounding each group's contribution to an integer *before* summing makes
/// the fold associative — the sum is identical in any absorption or merge
/// order, unlike an `f64` running sum.
const POWER_FP_SCALE: f64 = 1e6;
/// Fixed-point scale for the drift sum: parts per 10^12.
const DRIFT_FP_SCALE: f64 = 1e12;

/// Order-free electrical aggregate over all executed groups: integer sums
/// (fixed-point for the power numerator) plus an `f64` maximum, all of
/// which are associative folds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ExecAgg {
    simulated_cycles: u64,
    failures: u64,
    /// `sum(round(avg_macro_power_mw * cycles.max(1) * 1e6))` per group.
    power_weighted_fp: u128,
    /// `sum(cycles.max(1))` per group — the denominator weight.
    weight_cycles: u128,
    worst_irdrop_mv: f64,
}

impl ExecAgg {
    fn absorb(&mut self, exec: &PlanExecution) {
        let weight = exec.cycles.max(1);
        self.simulated_cycles += exec.cycles;
        self.failures += exec.failures;
        self.power_weighted_fp +=
            (exec.avg_macro_power_mw * weight as f64 * POWER_FP_SCALE).round() as u128;
        self.weight_cycles += u128::from(weight);
        self.worst_irdrop_mv = self.worst_irdrop_mv.max(exec.worst_irdrop_mv);
    }

    fn merge(&mut self, other: &Self) {
        self.simulated_cycles += other.simulated_cycles;
        self.failures += other.failures;
        self.power_weighted_fp += other.power_weighted_fp;
        self.weight_cycles += other.weight_cycles;
        self.worst_irdrop_mv = self.worst_irdrop_mv.max(other.worst_irdrop_mv);
    }

    fn avg_macro_power_mw(&self) -> f64 {
        if self.weight_cycles == 0 {
            0.0
        } else {
            (self.power_weighted_fp as f64 / POWER_FP_SCALE) / self.weight_cycles as f64
        }
    }
}

/// Order-free verification aggregate: each sample's relative drift is
/// quantized to parts-per-10^12 and summed as an integer; the worst drift
/// folds through `max` and bound violations through a sticky flag.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct VerifyAgg {
    sampled: usize,
    drift_fp_sum: u128,
    max_cycle_drift: f64,
    bound_violated: bool,
}

impl VerifyAgg {
    fn absorb(&mut self, analytical_cycles: u64, accurate_cycles: u64, error_bound: f64) {
        let drift = (analytical_cycles as f64 - accurate_cycles as f64).abs()
            / accurate_cycles.max(1) as f64;
        self.sampled += 1;
        self.drift_fp_sum += (drift * DRIFT_FP_SCALE).round() as u128;
        self.max_cycle_drift = self.max_cycle_drift.max(drift);
        if drift > error_bound {
            self.bound_violated = true;
        }
    }

    fn merge(&mut self, other: &Self) {
        self.sampled += other.sampled;
        self.drift_fp_sum += other.drift_fp_sum;
        self.max_cycle_drift = self.max_cycle_drift.max(other.max_cycle_drift);
        self.bound_violated |= other.bound_violated;
    }

    fn mean_cycle_drift(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            (self.drift_fp_sum as f64 / DRIFT_FP_SCALE) / self.sampled as f64
        }
    }
}

/// Order-free calibration-loop aggregate: per-model counter rows that merge
/// counter-for-counter, with the EWMA excursion quantized to fixed point and
/// folded through `max` so shard merges stay associative.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct CalAgg {
    per_model: Vec<ModelCalAgg>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct ModelCalAgg {
    samples: u64,
    recalibrations: u64,
    demotions: u64,
    promotions: u64,
    demoted: bool,
    /// The model's calibrated bound (identical on every shard; max-merged).
    error_bound: f64,
    /// Worst |EWMA| in parts per 10^12.
    max_abs_ewma_fp: u64,
}

impl CalAgg {
    fn merge(&mut self, other: &Self) {
        if self.per_model.len() < other.per_model.len() {
            self.per_model
                .resize(other.per_model.len(), ModelCalAgg::default());
        }
        for (mine, theirs) in self.per_model.iter_mut().zip(&other.per_model) {
            mine.samples += theirs.samples;
            mine.recalibrations += theirs.recalibrations;
            mine.demotions += theirs.demotions;
            mine.promotions += theirs.promotions;
            mine.demoted |= theirs.demoted;
            mine.error_bound = mine.error_bound.max(theirs.error_bound);
            mine.max_abs_ewma_fp = mine.max_abs_ewma_fp.max(theirs.max_abs_ewma_fp);
        }
    }

    fn finish(&self) -> CalibrationStats {
        let per_model: Vec<ModelCalibration> = self
            .per_model
            .iter()
            .enumerate()
            .map(|(model, agg)| ModelCalibration {
                model,
                samples: agg.samples,
                recalibrations: agg.recalibrations,
                demotions: agg.demotions,
                promotions: agg.promotions,
                demoted: agg.demoted,
                error_bound: agg.error_bound,
                max_abs_ewma_drift: agg.max_abs_ewma_fp as f64 / DRIFT_FP_SCALE,
            })
            .collect();
        CalibrationStats {
            samples: per_model.iter().map(|m| m.samples).sum(),
            recalibrations: per_model.iter().map(|m| m.recalibrations).sum(),
            demotions: per_model.iter().map(|m| m.demotions).sum(),
            promotions: per_model.iter().map(|m| m.promotions).sum(),
            max_abs_ewma_drift: per_model
                .iter()
                .map(|m| m.max_abs_ewma_drift)
                .fold(0.0f64, f64::max),
            per_model,
        }
    }
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ClassAcc {
    total: usize,
    served: usize,
    rejected: usize,
    deadline_misses: usize,
    latencies: LatencySketch,
}

/// Incremental [`ServeReport`] builder: absorb request groups one at a
/// time, then [`Self::finish`] freezes the percentiles and utilizations.
/// The event-driven session feeds one of these *as groups retire* (state
/// is dropped once absorbed, so session memory stays bounded); sharded
/// deployments can also drive accumulators directly.
///
/// Two accumulators from *sharded* sessions (disjoint chip pools fed
/// disjoint traffic over the same virtual timeline) combine with
/// [`Self::merge`]: counters add, latency sketches add element-wise, the
/// other shard's chips re-index after this shard's, and the makespan is
/// the later of the two — so a fleet split across sessions reports exactly
/// like one session serving the union.
///
/// Determinism: every aggregate is an associative integer fold (or a
/// maximum), so the finished report is byte-identical regardless of merge
/// grouping and — for everything except the chip re-indexing and the
/// left-most seed — merge *order*.  Memory is O(chips + classes), never
/// O(requests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportAccumulator {
    seed: u64,
    chips: usize,
    nominal_ghz: f64,
    analytical_chips: usize,
    verify_enabled: bool,
    fleet_error_bound: f64,
    total_requests: usize,
    rejected_requests: usize,
    deadline_misses: usize,
    groups_formed: usize,
    makespan_cycles: u64,
    latencies: LatencySketch,
    per_chip: Vec<ChipServeStats>,
    per_class: Vec<ClassAcc>,
    exec: ExecAgg,
    verify: VerifyAgg,
    /// `Some` once a session with the online calibration loop reported its
    /// state ([`Self::record_calibration`]); `None` otherwise.
    cal: Option<CalAgg>,
}

impl ReportAccumulator {
    /// An empty accumulator for a fleet of `chips` chips running at
    /// `nominal_ghz` (the frequency converting virtual cycles to seconds for
    /// the throughput figure).
    #[must_use]
    pub fn new(seed: u64, chips: usize, nominal_ghz: f64) -> Self {
        Self {
            seed,
            chips,
            nominal_ghz,
            analytical_chips: 0,
            verify_enabled: false,
            fleet_error_bound: 0.0,
            total_requests: 0,
            rejected_requests: 0,
            deadline_misses: 0,
            groups_formed: 0,
            makespan_cycles: 0,
            latencies: LatencySketch::new(),
            per_chip: (0..chips)
                .map(|chip| ChipServeStats {
                    chip,
                    groups: 0,
                    requests: 0,
                    busy_cycles: 0,
                    utilization: 0.0,
                })
                .collect(),
            per_class: vec![ClassAcc::default(); SloClass::ALL.len()],
            exec: ExecAgg::default(),
            verify: VerifyAgg::default(),
            cal: None,
        }
    }

    /// Declares the fleet's analytical composition: how many chips run the
    /// analytical fast path, whether sampled verification is on, and the
    /// fleet-wide worst calibrated error bound (reported for context; each
    /// sample is judged against its own plan's bound).
    pub fn set_analytical_context(
        &mut self,
        analytical_chips: usize,
        verify_enabled: bool,
        fleet_error_bound: f64,
    ) {
        self.analytical_chips = analytical_chips;
        self.verify_enabled = verify_enabled;
        self.fleet_error_bound = fleet_error_bound;
    }

    /// Records that dynamic batching committed one more group (admitted or
    /// not).
    pub fn note_group_formed(&mut self) {
        self.groups_formed += 1;
    }

    /// Absorbs one request bounced by admission control.
    pub fn absorb_rejected_request(&mut self, slo: SloClass) {
        self.total_requests += 1;
        self.rejected_requests += 1;
        let acc = &mut self.per_class[slo.index()];
        acc.total += 1;
        acc.rejected += 1;
    }

    /// Absorbs one served request of an executed group (latency accounting).
    pub fn absorb_served_request(
        &mut self,
        slo: SloClass,
        latency_cycles: u64,
        deadline_missed: bool,
    ) {
        self.total_requests += 1;
        self.latencies.record(latency_cycles);
        if deadline_missed {
            self.deadline_misses += 1;
        }
        let acc = &mut self.per_class[slo.index()];
        acc.total += 1;
        acc.served += 1;
        acc.latencies.record(latency_cycles);
        if deadline_missed {
            acc.deadline_misses += 1;
        }
    }

    /// Absorbs the chip-level outcome of one executed group: occupancy on
    /// `chip` from `start_cycles` to `finish_cycles` serving `batch_size`
    /// requests, plus the execution's electrical aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is outside the fleet declared at construction.
    pub fn absorb_executed_group(
        &mut self,
        chip: usize,
        start_cycles: u64,
        finish_cycles: u64,
        batch_size: usize,
        exec: &PlanExecution,
    ) {
        let stats = &mut self.per_chip[chip];
        stats.groups += 1;
        stats.requests += batch_size;
        stats.busy_cycles += finish_cycles - start_cycles;
        self.makespan_cycles = self.makespan_cycles.max(finish_cycles);
        self.exec.absorb(exec);
    }

    /// Absorbs one sampled-verification measurement (an analytical group
    /// additionally replayed cycle-accurately), judged against `error_bound`
    /// — the calibrated bound of the group's *own* plan.
    pub fn absorb_verify_sample(
        &mut self,
        analytical_cycles: u64,
        accurate_cycles: u64,
        error_bound: f64,
    ) {
        self.verify
            .absorb(analytical_cycles, accurate_cycles, error_bound);
    }

    /// Records one session's online calibration-loop state, one row per
    /// model ([`ModelCalibration::model`] must equal the row's index).  The
    /// EWMA excursion is quantized to parts per 10^12 on the way in so
    /// every later fold is an integer/`max` aggregate.  Calling this on an
    /// accumulator that already holds rows (a merged shard tree) folds the
    /// new rows in counter-for-counter.
    pub fn record_calibration(&mut self, per_model: &[ModelCalibration]) {
        let incoming = CalAgg {
            per_model: per_model
                .iter()
                .map(|row| ModelCalAgg {
                    samples: row.samples,
                    recalibrations: row.recalibrations,
                    demotions: row.demotions,
                    promotions: row.promotions,
                    demoted: row.demoted,
                    error_bound: row.error_bound,
                    max_abs_ewma_fp: (row.max_abs_ewma_drift * DRIFT_FP_SCALE).round() as u64,
                })
                .collect(),
        };
        match &mut self.cal {
            Some(agg) => agg.merge(&incoming),
            None => self.cal = Some(incoming),
        }
    }

    /// Folds another shard's accumulator into this one (see the type-level
    /// docs for the sharding semantics).  The merge is associative — the
    /// counters and fixed-point sums add, the sketches add element-wise,
    /// and the bounds fold through `max` — so a shard tree can combine in
    /// any grouping (not any *order*: chips re-index in merge order); the
    /// resulting seed is the left-most shard's.
    ///
    /// # Panics
    ///
    /// Panics if the shards disagree on the nominal frequency: the merged
    /// throughput figure divides by one cycles-to-seconds factor, so a
    /// silent mismatch would misreport every merged rate.
    pub fn merge(&mut self, other: Self) {
        assert!(
            (self.nominal_ghz - other.nominal_ghz).abs() < 1e-12,
            "sharded sessions must share one nominal frequency \
             ({} GHz vs {} GHz)",
            self.nominal_ghz,
            other.nominal_ghz
        );
        self.chips += other.chips;
        self.analytical_chips += other.analytical_chips;
        self.verify_enabled |= other.verify_enabled;
        self.fleet_error_bound = self.fleet_error_bound.max(other.fleet_error_bound);
        self.total_requests += other.total_requests;
        self.rejected_requests += other.rejected_requests;
        self.deadline_misses += other.deadline_misses;
        self.groups_formed += other.groups_formed;
        self.makespan_cycles = self.makespan_cycles.max(other.makespan_cycles);
        self.latencies.merge(&other.latencies);
        let offset = self.per_chip.len();
        self.per_chip
            .extend(other.per_chip.into_iter().map(|mut c| {
                c.chip += offset;
                c
            }));
        for (mine, theirs) in self.per_class.iter_mut().zip(&other.per_class) {
            mine.total += theirs.total;
            mine.served += theirs.served;
            mine.rejected += theirs.rejected;
            mine.deadline_misses += theirs.deadline_misses;
            mine.latencies.merge(&theirs.latencies);
        }
        self.exec.merge(&other.exec);
        self.verify.merge(&other.verify);
        match (&mut self.cal, other.cal) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (None, Some(theirs)) => self.cal = Some(theirs),
            (_, None) => {}
        }
    }

    /// Freezes the accumulated state into a [`ServeReport`].
    #[must_use]
    pub fn finish(&self) -> ServeReport {
        let served_requests = self.latencies.count() as usize;

        let mut per_chip = self.per_chip.clone();
        for stats in &mut per_chip {
            stats.utilization = if self.makespan_cycles == 0 {
                0.0
            } else {
                stats.busy_cycles as f64 / self.makespan_cycles as f64
            };
        }

        let per_class = SloClass::ALL
            .iter()
            .map(|&class| {
                let acc = &self.per_class[class.index()];
                ClassServeStats {
                    class,
                    total: acc.total,
                    served: acc.served,
                    rejected: acc.rejected,
                    deadline_misses: acc.deadline_misses,
                    latency_p50_cycles: acc.latencies.percentile(0.50),
                    latency_p99_cycles: acc.latencies.percentile(0.99),
                }
            })
            .collect();

        let verification = if self.verify_enabled {
            Some(VerificationStats {
                sampled: self.verify.sampled,
                mean_cycle_drift: self.verify.mean_cycle_drift(),
                max_cycle_drift: self.verify.max_cycle_drift,
                error_bound: self.fleet_error_bound,
                // Zero samples is not a pass: a gate keyed on this field
                // must never go green without a measurement.
                within_bound: !self.verify.bound_violated && self.verify.sampled > 0,
            })
        } else {
            None
        };

        let groups_executed: usize = per_chip.iter().map(|c| c.groups).sum();
        ServeReport {
            seed: self.seed,
            chips: self.chips,
            total_requests: self.total_requests,
            served_requests,
            rejected_requests: self.rejected_requests,
            deadline_misses: self.deadline_misses,
            groups_formed: self.groups_formed,
            groups_executed,
            mean_batch_size: if groups_executed == 0 {
                0.0
            } else {
                served_requests as f64 / groups_executed as f64
            },
            makespan_cycles: self.makespan_cycles,
            latency_p50_cycles: self.latencies.percentile(0.50),
            latency_p95_cycles: self.latencies.percentile(0.95),
            latency_p99_cycles: self.latencies.percentile(0.99),
            latency_max_cycles: self.latencies.max(),
            throughput_rps: if self.makespan_cycles == 0 {
                0.0
            } else {
                served_requests as f64 / (self.makespan_cycles as f64 / (self.nominal_ghz * 1e9))
            },
            avg_macro_power_mw: self.exec.avg_macro_power_mw(),
            worst_irdrop_mv: self.exec.worst_irdrop_mv,
            failures: self.exec.failures,
            simulated_cycles: self.exec.simulated_cycles,
            analytical_chips: self.analytical_chips,
            verification,
            calibration: self.cal.as_ref().map(CalAgg::finish),
            per_chip,
            per_class,
        }
    }
}

/// Per-class DAG accounting row (whole DAGs, not stages).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagClassStats {
    /// The class the row describes (the DAG instance's class).
    pub class: SloClass,
    /// DAG instances of this class submitted.
    pub total: usize,
    /// Instances whose every stage was served.
    pub completed: usize,
    /// Completed instances whose end-to-end latency broke the DAG deadline.
    pub deadline_misses: usize,
    /// Median end-to-end latency of completed instances (cycles,
    /// sketch-quantized).
    pub e2e_p50_cycles: u64,
    /// 99th-percentile end-to-end latency of completed instances.
    pub e2e_p99_cycles: u64,
}

/// DAG-level accounting of one orchestrated run, attached to
/// [`crate::fleet::FleetReport::dag`] by
/// [`crate::dag::DagOrchestrator::drain`]: whole-DAG conservation and
/// end-to-end latency on top of the per-request serving report (DAG stages
/// are ordinary requests there).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagServeStats {
    /// DAG instances submitted.
    pub dags: usize,
    /// Instances whose every stage was served.
    pub completed: usize,
    /// Instances that lost at least one stage (per-DAG admission shed, a
    /// mid-flight stage rejection, or eviction).  `completed + failed ==
    /// dags` once drained — a DAG either fully completes or counts here.
    pub failed: usize,
    /// Completed instances that broke their end-to-end deadline.
    pub deadline_misses: usize,
    /// Stages across all instances.
    pub stages_total: usize,
    /// Stages executed to completion.
    pub stages_served: usize,
    /// Stages bounced by per-stage admission control mid-flight.
    pub stages_rejected: usize,
    /// Stages shed without submission (whole-DAG admission, a failed
    /// sibling stage, or eviction).  `served + rejected + shed ==
    /// stages_total` once drained — the stage conservation law.
    pub stages_shed: usize,
    /// Stages whose class was promoted above their own by priority
    /// inheritance from a downstream stage.
    pub inherited_promotions: usize,
    /// Point (non-DAG) requests routed through the orchestrator.
    pub points: usize,
    /// Median end-to-end latency over completed instances (arrival of the
    /// DAG to the measured finish of its last stage; sketch-quantized).
    pub e2e_p50_cycles: u64,
    /// 99th-percentile end-to-end latency over completed instances.
    pub e2e_p99_cycles: u64,
    /// Worst end-to-end latency over completed instances.
    pub e2e_max_cycles: u64,
    /// Per-class rows, ascending priority order.
    pub per_class: Vec<DagClassStats>,
}

/// Per-class running DAG state inside [`DagAccumulator`].
#[derive(Debug, Clone, Default)]
struct DagClassAcc {
    total: usize,
    completed: usize,
    deadline_misses: usize,
    e2e: LatencySketch,
}

/// Incremental [`DagServeStats`] builder, fed by the DAG orchestrator as
/// instances resolve.  Latencies go through the same [`LatencySketch`] as
/// the per-request report, so the frozen percentiles are order-free and
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct DagAccumulator {
    dags: usize,
    completed: usize,
    failed: usize,
    deadline_misses: usize,
    stages_total: usize,
    stages_served: usize,
    stages_rejected: usize,
    stages_shed: usize,
    inherited_promotions: usize,
    points: usize,
    e2e: LatencySketch,
    per_class: [DagClassAcc; 3],
}

impl DagAccumulator {
    /// A fresh, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes one submitted DAG instance of `class` with `stages` stages.
    pub fn note_dag(&mut self, class: SloClass, stages: usize) {
        self.dags += 1;
        self.stages_total += stages;
        self.per_class[class.index()].total += 1;
    }

    /// Notes one point request routed through the orchestrator.
    pub fn note_point(&mut self) {
        self.points += 1;
    }

    /// Notes one stage promoted above its own class by inheritance.
    pub fn note_promotion(&mut self) {
        self.inherited_promotions += 1;
    }

    /// Absorbs one served stage.
    pub fn absorb_stage_served(&mut self) {
        self.stages_served += 1;
    }

    /// Absorbs one admission-rejected stage.
    pub fn absorb_stage_rejected(&mut self) {
        self.stages_rejected += 1;
    }

    /// Absorbs one shed stage.
    pub fn absorb_stage_shed(&mut self) {
        self.stages_shed += 1;
    }

    /// Absorbs a fully served DAG instance: every stage completed,
    /// end-to-end latency `e2e_cycles`, deadline verdict `missed`.
    pub fn absorb_dag_completed(&mut self, class: SloClass, e2e_cycles: u64, missed: bool) {
        self.completed += 1;
        self.e2e.record(e2e_cycles);
        let row = &mut self.per_class[class.index()];
        row.completed += 1;
        row.e2e.record(e2e_cycles);
        if missed {
            self.deadline_misses += 1;
            row.deadline_misses += 1;
        }
    }

    /// Absorbs a failed DAG instance (at least one stage rejected or shed).
    pub fn absorb_dag_failed(&mut self) {
        self.failed += 1;
    }

    /// Freezes the DAG-level stats.
    #[must_use]
    pub fn finish(&self) -> DagServeStats {
        let per_class = SloClass::ALL
            .iter()
            .map(|&class| {
                let acc = &self.per_class[class.index()];
                DagClassStats {
                    class,
                    total: acc.total,
                    completed: acc.completed,
                    deadline_misses: acc.deadline_misses,
                    e2e_p50_cycles: acc.e2e.percentile(0.50),
                    e2e_p99_cycles: acc.e2e.percentile(0.99),
                }
            })
            .collect();
        DagServeStats {
            dags: self.dags,
            completed: self.completed,
            failed: self.failed,
            deadline_misses: self.deadline_misses,
            stages_total: self.stages_total,
            stages_served: self.stages_served,
            stages_rejected: self.stages_rejected,
            stages_shed: self.stages_shed,
            inherited_promotions: self.inherited_promotions,
            points: self.points,
            e2e_p50_cycles: self.e2e.percentile(0.50),
            e2e_p99_cycles: self.e2e.percentile(0.99),
            e2e_max_cycles: self.e2e.max(),
            per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sample, 0.50), 50);
        assert_eq!(percentile_sorted(&sample, 0.95), 95);
        assert_eq!(percentile_sorted(&sample, 0.99), 99);
        assert_eq!(percentile_sorted(&sample, 1.0), 100);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_sorted(&[], 0.5), 0);
        assert_eq!(percentile_sorted(&[7], 0.01), 7);
        assert_eq!(percentile_sorted(&[7], 0.99), 7);
        assert_eq!(percentile_sorted(&[3, 9], 0.5), 3);
        assert_eq!(percentile_sorted(&[3, 9], 0.51), 9);
    }

    /// Regression for the float nearest-rank: `(0.07 * 3_000_000.0).ceil()`
    /// lands on a representation boundary and returns rank 210_001; the
    /// integer path must return the true nearest rank 210_000.
    #[test]
    fn percentile_rank_is_exact_at_hyperscale_lengths() {
        let float_rank = (0.07f64 * 3_000_000f64).ceil() as usize;
        assert_eq!(float_rank, 210_001, "platform reproduces the float bug");

        let sample: Vec<u64> = (1..=3_000_000).collect();
        assert_eq!(percentile_sorted(&sample, 0.07), 210_000);
        assert_eq!(percentile_sorted(&sample, 0.95), 2_850_000);
        assert_eq!(percentile_sorted(&sample, 0.999), 2_997_000);
        assert_eq!(percentile_sorted(&sample, 1.0), 3_000_000);
    }

    #[test]
    fn sketch_is_exact_below_sixty_four() {
        let mut sketch = LatencySketch::new();
        for v in 0..64u64 {
            sketch.record(v);
        }
        assert_eq!(sketch.count(), 64);
        assert_eq!(sketch.max(), 63);
        for v in 0..64u64 {
            let q = (v + 1) as f64 / 64.0;
            assert_eq!(sketch.percentile(q), v);
        }
    }

    #[test]
    fn sketch_percentile_bounds_and_clamps_to_max() {
        let mut sketch = LatencySketch::new();
        let mut exact = Vec::new();
        let mut v = 1u64;
        while v < 1_000_000_000 {
            sketch.record(v);
            exact.push(v);
            v = v * 3 + 1;
        }
        exact.sort_unstable();
        for &q in &[0.05, 0.50, 0.95, 0.99, 1.0] {
            let s = sketch.percentile(q);
            let e = percentile_sorted(&exact, q);
            assert!(s >= e, "sketch {s} under-estimates exact {e} at q={q}");
            assert!(
                (s - e).saturating_mul(LatencySketch::ERROR_DENOM) <= e,
                "sketch {s} beyond 1/32 above exact {e} at q={q}"
            );
        }
        assert_eq!(sketch.percentile(1.0), sketch.max());
    }

    #[test]
    fn sketch_merge_matches_pooled_recording() {
        let mut left = LatencySketch::new();
        let mut right = LatencySketch::new();
        let mut pooled = LatencySketch::new();
        for i in 0..1000u64 {
            let v = i * i * 37 + 5;
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
            pooled.record(v);
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, pooled);
        let mut reversed = right;
        reversed.merge(&left);
        assert_eq!(reversed, pooled);
    }
}
