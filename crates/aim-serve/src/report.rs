//! The serializable outcome of one serving run: request accounting, latency
//! percentiles, per-chip and per-SLO-class splits, chip-level electrical
//! aggregates — plus the incremental [`ReportAccumulator`] the event-driven
//! session feeds group by group (and [`ReportAccumulator::merge`]s across
//! sharded sessions) before freezing a [`ServeReport`].

use serde::{Deserialize, Serialize};

use aim_core::pipeline::PlanExecution;
use workloads::inputs::SloClass;

/// Drift statistics of the sampled-verification mode: every Nth request
/// group executed on an analytical chip is additionally replayed through the
/// cycle-accurate engine, and the relative cycle-count drift between the two
/// backends is recorded here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerificationStats {
    /// Number of groups replayed cycle-accurately for verification.
    pub sampled: usize,
    /// Mean relative cycle drift `|analytical - accurate| / accurate` over
    /// the sampled groups (0 when nothing was sampled).
    pub mean_cycle_drift: f64,
    /// Worst relative cycle drift observed.
    pub max_cycle_drift: f64,
    /// The fleet's error bound: the worst self-reported calibration bound
    /// over the served analytical plans.
    pub error_bound: f64,
    /// Whether drift was actually measured (`sampled > 0`) *and* every
    /// observed drift stayed within its own plan's calibrated bound
    /// (stricter than comparing against the fleet-wide `error_bound` when
    /// plans carry different bounds).  `false` with `sampled == 0` means no
    /// analytical group got verified — never treat that as a pass.
    pub within_bound: bool,
}

/// Per-SLO-class serving statistics: the latency split that shows whether
/// priority scheduling actually protected the latency-sensitive tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassServeStats {
    /// The class the row describes.
    pub class: SloClass,
    /// Requests of this class in the trace.
    pub total: usize,
    /// Requests of this class executed to completion.
    pub served: usize,
    /// Requests of this class rejected by admission control.
    pub rejected: usize,
    /// Served requests of this class that finished past their deadline.
    pub deadline_misses: usize,
    /// Median served latency of the class (cycles).
    pub latency_p50_cycles: u64,
    /// 99th-percentile served latency of the class (cycles).
    pub latency_p99_cycles: u64,
}

/// Per-chip serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipServeStats {
    /// Chip index within the fleet.
    pub chip: usize,
    /// Request groups the chip executed.
    pub groups: usize,
    /// Requests the chip served (sum of its groups' batch sizes).
    pub requests: usize,
    /// Cycles the chip spent busy (reload + execution).
    pub busy_cycles: u64,
    /// `busy_cycles / makespan_cycles` — 0 when the run is empty.
    pub utilization: f64,
}

/// Aggregated outcome of one serving run.
///
/// Every field derives from the trace, the serve configuration and
/// deterministic simulation — a fixed seed and configuration reproduce the
/// report byte for byte, independent of the worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Serve seed the run used.
    pub seed: u64,
    /// Number of chips in the fleet.
    pub chips: usize,
    /// Requests in the replayed trace.
    pub total_requests: usize,
    /// Requests executed to completion.
    pub served_requests: usize,
    /// Requests rejected by admission control.
    pub rejected_requests: usize,
    /// Served requests that finished past their deadline.
    pub deadline_misses: usize,
    /// Request groups formed by dynamic batching.
    pub groups_formed: usize,
    /// Groups actually executed (formed minus rejected).
    pub groups_executed: usize,
    /// Mean executed batch size (`served / groups_executed`).
    pub mean_batch_size: f64,
    /// Virtual completion time of the last group (cycles).
    pub makespan_cycles: u64,
    /// Median served latency (cycles, arrival to group completion).
    pub latency_p50_cycles: u64,
    /// 95th-percentile served latency (cycles).
    pub latency_p95_cycles: u64,
    /// 99th-percentile served latency (cycles).
    pub latency_p99_cycles: u64,
    /// Worst served latency (cycles).
    pub latency_max_cycles: u64,
    /// Served requests per second of virtual time at the nominal frequency.
    pub throughput_rps: f64,
    /// Mean per-macro power over all executed simulation cycles (mW).
    pub avg_macro_power_mw: f64,
    /// Worst droop observed anywhere in the fleet (mV).
    pub worst_irdrop_mv: f64,
    /// Total IRFailures raised across the fleet.
    pub failures: u64,
    /// Total simulated chip cycles across all executions.
    pub simulated_cycles: u64,
    /// Chips running the analytical fast path (0 for a homogeneous
    /// cycle-accurate fleet).
    pub analytical_chips: usize,
    /// Sampled-verification drift statistics; `Some` whenever the fleet has
    /// analytical chips and verification was enabled.
    pub verification: Option<VerificationStats>,
    /// Per-chip statistics, indexed by chip id.
    pub per_chip: Vec<ChipServeStats>,
    /// Per-SLO-class statistics, in ascending priority order
    /// (best-effort, standard, latency-sensitive).
    pub per_class: Vec<ClassServeStats>,
}

/// Nearest-rank percentile of an ascending-sorted sample (`q` in `(0, 1]`).
/// Returns 0 for an empty sample.
#[must_use]
pub fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Electrical aggregate of one executed group, kept in absorption order so
/// floating-point accumulation stays byte-deterministic at [`finish`].
///
/// [`finish`]: ReportAccumulator::finish
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ExecSample {
    cycles: u64,
    failures: u64,
    avg_macro_power_mw: f64,
    worst_irdrop_mv: f64,
}

/// One sampled-verification measurement, carrying its own plan's calibrated
/// bound so merged shards judge each sample against the right promise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct VerifyEntry {
    analytical_cycles: u64,
    accurate_cycles: u64,
    error_bound: f64,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ClassAcc {
    total: usize,
    served: usize,
    rejected: usize,
    deadline_misses: usize,
    latencies: Vec<u64>,
}

/// Incremental [`ServeReport`] builder: absorb request groups one at a
/// time, then [`Self::finish`] freezes the percentiles, utilizations and
/// order-sensitive float sums.  The event-driven session feeds one of
/// these at drain time, replaying its retained group records in commit
/// order (so the float-sum order never depends on when groups happened to
/// retire); sharded deployments can also drive accumulators directly.
///
/// Two accumulators from *sharded* sessions (disjoint chip pools fed
/// disjoint traffic over the same virtual timeline) combine with
/// [`Self::merge`]: counters add, latency samples pool, the other shard's
/// chips re-index after this shard's, and the makespan is the later of the
/// two — so a fleet split across sessions reports exactly like one session
/// serving the union.
///
/// Determinism: every absorb method appends to order-preserving vectors, so
/// callers that absorb in a deterministic order (the session uses
/// group-commit order) get byte-identical finished reports; `u64` counters
/// and the sorted latency pools are order-free by construction, leaving the
/// float sums as the only order-carrying state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportAccumulator {
    seed: u64,
    chips: usize,
    nominal_ghz: f64,
    analytical_chips: usize,
    verify_enabled: bool,
    fleet_error_bound: f64,
    total_requests: usize,
    rejected_requests: usize,
    deadline_misses: usize,
    groups_formed: usize,
    makespan_cycles: u64,
    latencies: Vec<u64>,
    per_chip: Vec<ChipServeStats>,
    per_class: Vec<ClassAcc>,
    exec: Vec<ExecSample>,
    verify: Vec<VerifyEntry>,
}

impl ReportAccumulator {
    /// An empty accumulator for a fleet of `chips` chips running at
    /// `nominal_ghz` (the frequency converting virtual cycles to seconds for
    /// the throughput figure).
    #[must_use]
    pub fn new(seed: u64, chips: usize, nominal_ghz: f64) -> Self {
        Self {
            seed,
            chips,
            nominal_ghz,
            analytical_chips: 0,
            verify_enabled: false,
            fleet_error_bound: 0.0,
            total_requests: 0,
            rejected_requests: 0,
            deadline_misses: 0,
            groups_formed: 0,
            makespan_cycles: 0,
            latencies: Vec::new(),
            per_chip: (0..chips)
                .map(|chip| ChipServeStats {
                    chip,
                    groups: 0,
                    requests: 0,
                    busy_cycles: 0,
                    utilization: 0.0,
                })
                .collect(),
            per_class: vec![ClassAcc::default(); SloClass::ALL.len()],
            exec: Vec::new(),
            verify: Vec::new(),
        }
    }

    /// Declares the fleet's analytical composition: how many chips run the
    /// analytical fast path, whether sampled verification is on, and the
    /// fleet-wide worst calibrated error bound (reported for context; each
    /// sample is judged against its own plan's bound).
    pub fn set_analytical_context(
        &mut self,
        analytical_chips: usize,
        verify_enabled: bool,
        fleet_error_bound: f64,
    ) {
        self.analytical_chips = analytical_chips;
        self.verify_enabled = verify_enabled;
        self.fleet_error_bound = fleet_error_bound;
    }

    /// Records that dynamic batching committed one more group (admitted or
    /// not).
    pub fn note_group_formed(&mut self) {
        self.groups_formed += 1;
    }

    /// Absorbs one request bounced by admission control.
    pub fn absorb_rejected_request(&mut self, slo: SloClass) {
        self.total_requests += 1;
        self.rejected_requests += 1;
        let acc = &mut self.per_class[slo.index()];
        acc.total += 1;
        acc.rejected += 1;
    }

    /// Absorbs one served request of an executed group (latency accounting).
    pub fn absorb_served_request(
        &mut self,
        slo: SloClass,
        latency_cycles: u64,
        deadline_missed: bool,
    ) {
        self.total_requests += 1;
        self.latencies.push(latency_cycles);
        if deadline_missed {
            self.deadline_misses += 1;
        }
        let acc = &mut self.per_class[slo.index()];
        acc.total += 1;
        acc.served += 1;
        acc.latencies.push(latency_cycles);
        if deadline_missed {
            acc.deadline_misses += 1;
        }
    }

    /// Absorbs the chip-level outcome of one executed group: occupancy on
    /// `chip` from `start_cycles` to `finish_cycles` serving `batch_size`
    /// requests, plus the execution's electrical aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is outside the fleet declared at construction.
    pub fn absorb_executed_group(
        &mut self,
        chip: usize,
        start_cycles: u64,
        finish_cycles: u64,
        batch_size: usize,
        exec: &PlanExecution,
    ) {
        let stats = &mut self.per_chip[chip];
        stats.groups += 1;
        stats.requests += batch_size;
        stats.busy_cycles += finish_cycles - start_cycles;
        self.makespan_cycles = self.makespan_cycles.max(finish_cycles);
        self.exec.push(ExecSample {
            cycles: exec.cycles,
            failures: exec.failures,
            avg_macro_power_mw: exec.avg_macro_power_mw,
            worst_irdrop_mv: exec.worst_irdrop_mv,
        });
    }

    /// Absorbs one sampled-verification measurement (an analytical group
    /// additionally replayed cycle-accurately), judged against `error_bound`
    /// — the calibrated bound of the group's *own* plan.
    pub fn absorb_verify_sample(
        &mut self,
        analytical_cycles: u64,
        accurate_cycles: u64,
        error_bound: f64,
    ) {
        self.verify.push(VerifyEntry {
            analytical_cycles,
            accurate_cycles,
            error_bound,
        });
    }

    /// Folds another shard's accumulator into this one (see the type-level
    /// docs for the sharding semantics).  The merge is associative — the
    /// counters add, the float vectors concatenate in argument order, and
    /// the bound folds through `max` — so a shard tree can combine in any
    /// grouping (not any *order*: chips re-index in merge order); the
    /// resulting seed is the left-most shard's.
    ///
    /// # Panics
    ///
    /// Panics if the shards disagree on the nominal frequency: the merged
    /// throughput figure divides by one cycles-to-seconds factor, so a
    /// silent mismatch would misreport every merged rate.
    pub fn merge(&mut self, other: Self) {
        assert!(
            (self.nominal_ghz - other.nominal_ghz).abs() < 1e-12,
            "sharded sessions must share one nominal frequency \
             ({} GHz vs {} GHz)",
            self.nominal_ghz,
            other.nominal_ghz
        );
        self.chips += other.chips;
        self.analytical_chips += other.analytical_chips;
        self.verify_enabled |= other.verify_enabled;
        self.fleet_error_bound = self.fleet_error_bound.max(other.fleet_error_bound);
        self.total_requests += other.total_requests;
        self.rejected_requests += other.rejected_requests;
        self.deadline_misses += other.deadline_misses;
        self.groups_formed += other.groups_formed;
        self.makespan_cycles = self.makespan_cycles.max(other.makespan_cycles);
        self.latencies.extend(other.latencies);
        let offset = self.per_chip.len();
        self.per_chip
            .extend(other.per_chip.into_iter().map(|mut c| {
                c.chip += offset;
                c
            }));
        for (mine, theirs) in self.per_class.iter_mut().zip(other.per_class) {
            mine.total += theirs.total;
            mine.served += theirs.served;
            mine.rejected += theirs.rejected;
            mine.deadline_misses += theirs.deadline_misses;
            mine.latencies.extend(theirs.latencies);
        }
        self.exec.extend(other.exec);
        self.verify.extend(other.verify);
    }

    /// Freezes the accumulated state into a [`ServeReport`].
    #[must_use]
    pub fn finish(&self) -> ServeReport {
        let mut latencies = self.latencies.clone();
        latencies.sort_unstable();
        let served_requests = latencies.len();

        let mut per_chip = self.per_chip.clone();
        for stats in &mut per_chip {
            stats.utilization = if self.makespan_cycles == 0 {
                0.0
            } else {
                stats.busy_cycles as f64 / self.makespan_cycles as f64
            };
        }

        let per_class = SloClass::ALL
            .iter()
            .map(|&class| {
                let acc = &self.per_class[class.index()];
                let mut lat = acc.latencies.clone();
                lat.sort_unstable();
                ClassServeStats {
                    class,
                    total: acc.total,
                    served: acc.served,
                    rejected: acc.rejected,
                    deadline_misses: acc.deadline_misses,
                    latency_p50_cycles: percentile_sorted(&lat, 0.50),
                    latency_p99_cycles: percentile_sorted(&lat, 0.99),
                }
            })
            .collect();

        // Electrical aggregates, summed in absorption order.
        let mut simulated_cycles = 0u64;
        let mut failures = 0u64;
        let mut power_weighted = 0.0f64;
        let mut weight = 0.0f64;
        let mut worst_irdrop_mv = 0.0f64;
        for s in &self.exec {
            let w = s.cycles.max(1) as f64;
            simulated_cycles += s.cycles;
            failures += s.failures;
            power_weighted += s.avg_macro_power_mw * w;
            weight += w;
            worst_irdrop_mv = worst_irdrop_mv.max(s.worst_irdrop_mv);
        }

        let verification = if self.verify_enabled {
            let mut max_cycle_drift = 0.0f64;
            let mut drift_sum = 0.0f64;
            let mut within_bound = true;
            for s in &self.verify {
                let drift = (s.analytical_cycles as f64 - s.accurate_cycles as f64).abs()
                    / s.accurate_cycles.max(1) as f64;
                max_cycle_drift = max_cycle_drift.max(drift);
                drift_sum += drift;
                if drift > s.error_bound {
                    within_bound = false;
                }
            }
            Some(VerificationStats {
                sampled: self.verify.len(),
                mean_cycle_drift: if self.verify.is_empty() {
                    0.0
                } else {
                    drift_sum / self.verify.len() as f64
                },
                max_cycle_drift,
                error_bound: self.fleet_error_bound,
                // Zero samples is not a pass: a gate keyed on this field
                // must never go green without a measurement.
                within_bound: within_bound && !self.verify.is_empty(),
            })
        } else {
            None
        };

        let groups_executed: usize = per_chip.iter().map(|c| c.groups).sum();
        ServeReport {
            seed: self.seed,
            chips: self.chips,
            total_requests: self.total_requests,
            served_requests,
            rejected_requests: self.rejected_requests,
            deadline_misses: self.deadline_misses,
            groups_formed: self.groups_formed,
            groups_executed,
            mean_batch_size: if groups_executed == 0 {
                0.0
            } else {
                served_requests as f64 / groups_executed as f64
            },
            makespan_cycles: self.makespan_cycles,
            latency_p50_cycles: percentile_sorted(&latencies, 0.50),
            latency_p95_cycles: percentile_sorted(&latencies, 0.95),
            latency_p99_cycles: percentile_sorted(&latencies, 0.99),
            latency_max_cycles: latencies.last().copied().unwrap_or(0),
            throughput_rps: if self.makespan_cycles == 0 {
                0.0
            } else {
                served_requests as f64 / (self.makespan_cycles as f64 / (self.nominal_ghz * 1e9))
            },
            avg_macro_power_mw: if weight == 0.0 {
                0.0
            } else {
                power_weighted / weight
            },
            worst_irdrop_mv,
            failures,
            simulated_cycles,
            analytical_chips: self.analytical_chips,
            verification,
            per_chip,
            per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sample, 0.50), 50);
        assert_eq!(percentile_sorted(&sample, 0.95), 95);
        assert_eq!(percentile_sorted(&sample, 0.99), 99);
        assert_eq!(percentile_sorted(&sample, 1.0), 100);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_sorted(&[], 0.5), 0);
        assert_eq!(percentile_sorted(&[7], 0.01), 7);
        assert_eq!(percentile_sorted(&[7], 0.99), 7);
        assert_eq!(percentile_sorted(&[3, 9], 0.5), 3);
        assert_eq!(percentile_sorted(&[3, 9], 0.51), 9);
    }
}
