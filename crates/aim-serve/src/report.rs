//! The serializable outcome of one serving run: request accounting, latency
//! percentiles, per-chip utilization and chip-level electrical aggregates.

use serde::{Deserialize, Serialize};

/// Drift statistics of the sampled-verification mode: every Nth request
/// group executed on an analytical chip is additionally replayed through the
/// cycle-accurate engine, and the relative cycle-count drift between the two
/// backends is recorded here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerificationStats {
    /// Number of groups replayed cycle-accurately for verification.
    pub sampled: usize,
    /// Mean relative cycle drift `|analytical - accurate| / accurate` over
    /// the sampled groups (0 when nothing was sampled).
    pub mean_cycle_drift: f64,
    /// Worst relative cycle drift observed.
    pub max_cycle_drift: f64,
    /// The fleet's error bound: the worst self-reported calibration bound
    /// over the served analytical plans.
    pub error_bound: f64,
    /// Whether drift was actually measured (`sampled > 0`) *and* every
    /// observed drift stayed within its own plan's calibrated bound
    /// (stricter than comparing against the fleet-wide `error_bound` when
    /// plans carry different bounds).  `false` with `sampled == 0` means no
    /// analytical group got verified — never treat that as a pass.
    pub within_bound: bool,
}

/// Per-chip serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipServeStats {
    /// Chip index within the fleet.
    pub chip: usize,
    /// Request groups the chip executed.
    pub groups: usize,
    /// Requests the chip served (sum of its groups' batch sizes).
    pub requests: usize,
    /// Cycles the chip spent busy (reload + execution).
    pub busy_cycles: u64,
    /// `busy_cycles / makespan_cycles` — 0 when the run is empty.
    pub utilization: f64,
}

/// Aggregated outcome of one serving run.
///
/// Every field derives from the trace, the serve configuration and
/// deterministic simulation — a fixed seed and configuration reproduce the
/// report byte for byte, independent of the worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Serve seed the run used.
    pub seed: u64,
    /// Number of chips in the fleet.
    pub chips: usize,
    /// Requests in the replayed trace.
    pub total_requests: usize,
    /// Requests executed to completion.
    pub served_requests: usize,
    /// Requests rejected by admission control.
    pub rejected_requests: usize,
    /// Served requests that finished past their deadline.
    pub deadline_misses: usize,
    /// Request groups formed by dynamic batching.
    pub groups_formed: usize,
    /// Groups actually executed (formed minus rejected).
    pub groups_executed: usize,
    /// Mean executed batch size (`served / groups_executed`).
    pub mean_batch_size: f64,
    /// Virtual completion time of the last group (cycles).
    pub makespan_cycles: u64,
    /// Median served latency (cycles, arrival to group completion).
    pub latency_p50_cycles: u64,
    /// 95th-percentile served latency (cycles).
    pub latency_p95_cycles: u64,
    /// 99th-percentile served latency (cycles).
    pub latency_p99_cycles: u64,
    /// Worst served latency (cycles).
    pub latency_max_cycles: u64,
    /// Served requests per second of virtual time at the nominal frequency.
    pub throughput_rps: f64,
    /// Mean per-macro power over all executed simulation cycles (mW).
    pub avg_macro_power_mw: f64,
    /// Worst droop observed anywhere in the fleet (mV).
    pub worst_irdrop_mv: f64,
    /// Total IRFailures raised across the fleet.
    pub failures: u64,
    /// Total simulated chip cycles across all executions.
    pub simulated_cycles: u64,
    /// Chips running the analytical fast path (0 for a homogeneous
    /// cycle-accurate fleet).
    pub analytical_chips: usize,
    /// Sampled-verification drift statistics; `Some` whenever the fleet has
    /// analytical chips and verification was enabled.
    pub verification: Option<VerificationStats>,
    /// Per-chip statistics, indexed by chip id.
    pub per_chip: Vec<ChipServeStats>,
}

/// Nearest-rank percentile of an ascending-sorted sample (`q` in `(0, 1]`).
/// Returns 0 for an empty sample.
#[must_use]
pub fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sample, 0.50), 50);
        assert_eq!(percentile_sorted(&sample, 0.95), 95);
        assert_eq!(percentile_sorted(&sample, 0.99), 99);
        assert_eq!(percentile_sorted(&sample, 1.0), 100);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_sorted(&[], 0.5), 0);
        assert_eq!(percentile_sorted(&[7], 0.01), 7);
        assert_eq!(percentile_sorted(&[7], 0.99), 7);
        assert_eq!(percentile_sorted(&[3, 9], 0.5), 3);
        assert_eq!(percentile_sorted(&[3, 9], 0.51), 9);
    }
}
