//! Post-training-quantization (PTQ) emulations and their combination with LHR.
//!
//! Table 3 of the paper shows that LHR also composes with PTQ methods —
//! OmniQuant for LLM layers and BRECQ for conv layers — but the HR reduction
//! is smaller than with full QAT because PTQ can only nudge weights locally
//! (it never retrains the model).
//!
//! This module emulates that behaviour without the original frameworks:
//!
//! * **Plain PTQ** is round-to-nearest quantization with a per-layer scale —
//!   the common core of both OmniQuant and BRECQ once their calibration has
//!   fixed the scales.
//! * **PTQ + LHR** is modelled as *HR-aware rounding*: each weight may round
//!   to the adjacent integer (±1 LSB away from round-to-nearest) when that
//!   integer has strictly lower Hamming weight and the extra rounding error
//!   stays inside the half-LSB budget a calibration-based method would
//!   accept.  This captures exactly what a block-reconstruction or
//!   learnable-clipping method can do with an added HR penalty: local
//!   adjustments only.

use serde::{Deserialize, Serialize};

use crate::hamming::HrTable;
use crate::quant::{QuantScheme, QuantizedLayer};
use crate::tensor::Tensor;

/// Which published PTQ method the emulation parameters correspond to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PtqMethod {
    /// OmniQuant-style calibration (used by the paper for GPT2 / Llama3.2-1B).
    OmniQuant,
    /// BRECQ-style block reconstruction (used for ResNet18 / MobileNetV2).
    Brecq,
}

impl PtqMethod {
    /// Fraction of a full LSB the method is willing to spend on HR-aware
    /// re-rounding.  Block-reconstruction (BRECQ) tolerates slightly more
    /// local movement than a pure calibration method.
    #[must_use]
    pub fn rounding_budget(self) -> f64 {
        match self {
            Self::OmniQuant => 0.35,
            Self::Brecq => 0.45,
        }
    }
}

/// Outcome of a PTQ pass over one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PtqOutcome {
    /// The quantized layer.
    pub layer: QuantizedLayer,
    /// Mean absolute quantization error versus the float reference.
    pub mean_abs_error: f64,
    /// HR of the produced weights.
    pub hr: f64,
}

/// Plain PTQ: fit a per-layer scale and round to nearest.
#[must_use]
pub fn quantize_ptq(name: &str, tensor: &Tensor, bits: u32) -> PtqOutcome {
    let layer = QuantizedLayer::from_tensor(name, tensor, bits);
    PtqOutcome {
        mean_abs_error: layer.mean_abs_error(tensor),
        hr: layer.hamming_rate(),
        layer,
    }
}

/// PTQ combined with LHR: HR-aware rounding within the method's budget.
///
/// For every weight the candidate integers are `round(w/s)` and its two
/// neighbours; a neighbour is chosen when it has a strictly lower Hamming
/// weight **and** the additional error stays within
/// `method.rounding_budget()` LSB.
#[must_use]
pub fn quantize_ptq_with_lhr(
    name: &str,
    tensor: &Tensor,
    bits: u32,
    method: PtqMethod,
) -> PtqOutcome {
    let scheme = QuantScheme::fit(tensor, bits);
    let table = HrTable::new(bits);
    let scale = scheme.scale();
    let budget = method.rounding_budget();

    let weights: Vec<i8> = tensor
        .data()
        .iter()
        .map(|&w| {
            let x = f64::from(w) / scale;
            let nearest = scheme.quantize(w);
            let mut best = nearest;
            let mut best_hr = table.hr(i32::from(nearest));
            for candidate in [i32::from(nearest) - 1, i32::from(nearest) + 1] {
                if candidate < scheme.qmin() || candidate > scheme.qmax() {
                    continue;
                }
                let extra_error = (f64::from(candidate) - x).abs();
                if extra_error <= 0.5 + budget && table.hr(candidate) < best_hr {
                    best = candidate as i8;
                    best_hr = table.hr(candidate);
                }
            }
            best
        })
        .collect();

    let layer = QuantizedLayer {
        name: name.to_string(),
        weights,
        scheme,
    };
    PtqOutcome {
        mean_abs_error: layer.mean_abs_error(tensor),
        hr: layer.hamming_rate(),
        layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llm_like_tensor(seed: u64) -> Tensor {
        Tensor::rand_laplace(vec![8192], 0.03, seed)
    }

    fn conv_like_tensor(seed: u64) -> Tensor {
        Tensor::randn(vec![8192], 0.04, seed)
    }

    #[test]
    fn plain_ptq_round_trips_within_half_lsb() {
        let t = conv_like_tensor(1);
        let out = quantize_ptq("conv", &t, 8);
        assert!(out.mean_abs_error <= 0.5 * out.layer.scheme.scale() + 1e-9);
    }

    #[test]
    fn lhr_ptq_reduces_hr_for_both_methods() {
        for (method, tensor) in [
            (PtqMethod::OmniQuant, llm_like_tensor(2)),
            (PtqMethod::Brecq, conv_like_tensor(3)),
        ] {
            let plain = quantize_ptq("l", &tensor, 8);
            let lhr = quantize_ptq_with_lhr("l", &tensor, 8, method);
            assert!(
                lhr.hr < plain.hr,
                "{method:?}: LHR-PTQ must lower HR ({} vs {})",
                lhr.hr,
                plain.hr
            );
            // ...but by less than full QAT typically achieves (< ~15 %).
            let reduction = (plain.hr - lhr.hr) / plain.hr;
            assert!(
                reduction < 0.15,
                "PTQ reduction should be modest, got {reduction}"
            );
        }
    }

    #[test]
    fn lhr_ptq_error_stays_within_budget() {
        let t = conv_like_tensor(4);
        let plain = quantize_ptq("l", &t, 8);
        let lhr = quantize_ptq_with_lhr("l", &t, 8, PtqMethod::Brecq);
        let scale = plain.layer.scheme.scale();
        // The LHR variant may add up to `budget` extra LSB of error per weight.
        assert!(lhr.mean_abs_error <= plain.mean_abs_error + 0.5 * scale);
        // No weight may move by more than one LSB from the nearest rounding.
        for (a, b) in plain.layer.weights.iter().zip(&lhr.layer.weights) {
            assert!((i16::from(*a) - i16::from(*b)).abs() <= 1);
        }
    }

    #[test]
    fn brecq_budget_moves_at_least_as_many_weights_as_omniquant() {
        let t = conv_like_tensor(5);
        let plain = quantize_ptq("l", &t, 8);
        let count_moves = |out: &PtqOutcome| {
            plain
                .layer
                .weights
                .iter()
                .zip(&out.layer.weights)
                .filter(|(a, b)| a != b)
                .count()
        };
        let omni = quantize_ptq_with_lhr("l", &t, 8, PtqMethod::OmniQuant);
        let brecq = quantize_ptq_with_lhr("l", &t, 8, PtqMethod::Brecq);
        assert!(count_moves(&brecq) >= count_moves(&omni));
    }

    #[test]
    fn int4_ptq_with_lhr_respects_range() {
        let t = llm_like_tensor(6);
        let out = quantize_ptq_with_lhr("l", &t, 4, PtqMethod::OmniQuant);
        assert!(out.layer.weights.iter().all(|&w| (-8..=7).contains(&w)));
    }
}
