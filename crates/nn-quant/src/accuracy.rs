//! Accuracy / perplexity proxy model for the large-network experiments.
//!
//! The paper evaluates six networks (ResNet18, MobileNetV2, YOLOv5, ViT,
//! Llama3.2-1B, GPT2) on their native datasets; reproducing those training
//! and evaluation pipelines is out of scope, so DESIGN.md documents this
//! substitution: accuracy impact is modelled as a function of how far the
//! HR-optimisation moved the weights away from the baseline quantized model.
//!
//! The proxy captures the three qualitative behaviours the paper reports:
//!
//! 1. small, local weight movement (LHR, WDS, LHR+PTQ) costs essentially no
//!    accuracy — movement below a per-model *tolerance* is free;
//! 2. large movement (aggressive pruning) costs accuracy roughly linearly in
//!    the excess movement;
//! 3. transformer-style models can gain a small amount of accuracy from mild
//!    regularization (ViT / Llama3 improve slightly in the paper's Fig. 13),
//!    modelled as a bounded generalization bonus that peaks at moderate
//!    perturbation.
//!
//! The proxy is deterministic; its constants are per-model-family, not
//! fitted to the paper's exact numbers.

use serde::{Deserialize, Serialize};

/// Whether a workload reports classification accuracy (%) or perplexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Top-1 accuracy in percent (higher is better).
    AccuracyPercent,
    /// Language-model perplexity (lower is better).
    Perplexity,
}

/// Model-family–specific constants of the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyProxy {
    /// Baseline quality of the INT8-quantized model (accuracy % or ppl).
    pub baseline: f64,
    /// Which metric `baseline` is expressed in.
    pub metric: QualityMetric,
    /// Relative weight movement (RMS / std) tolerated without any penalty.
    pub tolerance: f64,
    /// Quality lost per unit of excess movement (accuracy points, or
    /// multiplicative ppl increase per unit).
    pub sensitivity: f64,
    /// Peak generalization bonus (accuracy points, or ppl decrease) granted
    /// for mild regularization; zero for conv-style models.
    pub regularization_bonus: f64,
}

impl AccuracyProxy {
    /// Proxy constants for convolution-style classifiers (ResNet18,
    /// MobileNetV2): no generalization bonus, moderate sensitivity.
    #[must_use]
    pub fn conv_classifier(baseline_accuracy: f64) -> Self {
        Self {
            baseline: baseline_accuracy,
            metric: QualityMetric::AccuracyPercent,
            tolerance: 0.25,
            sensitivity: 9.0,
            regularization_bonus: 0.0,
        }
    }

    /// Proxy constants for detection models (YOLOv5 mAP-style score).
    #[must_use]
    pub fn detector(baseline_map: f64) -> Self {
        Self {
            baseline: baseline_map,
            metric: QualityMetric::AccuracyPercent,
            tolerance: 0.22,
            sensitivity: 11.0,
            regularization_bonus: 0.0,
        }
    }

    /// Proxy constants for transformer classifiers (ViT): small bonus for
    /// mild regularization.
    #[must_use]
    pub fn transformer_classifier(baseline_accuracy: f64) -> Self {
        Self {
            baseline: baseline_accuracy,
            metric: QualityMetric::AccuracyPercent,
            tolerance: 0.28,
            sensitivity: 8.0,
            regularization_bonus: 0.35,
        }
    }

    /// Proxy constants for causal language models (GPT2, Llama3.2-1B)
    /// evaluated by perplexity.
    #[must_use]
    pub fn language_model(baseline_ppl: f64) -> Self {
        Self {
            baseline: baseline_ppl,
            metric: QualityMetric::Perplexity,
            tolerance: 0.28,
            sensitivity: 0.6,
            regularization_bonus: 0.01,
        }
    }

    /// Evaluates the proxy for a given relative weight movement
    /// (RMS movement divided by the baseline weight standard deviation).
    ///
    /// Returns the predicted quality in the model's native metric.
    #[must_use]
    pub fn quality(&self, relative_weight_shift: f64) -> f64 {
        let shift = relative_weight_shift.max(0.0);
        let excess = (shift - self.tolerance).max(0.0);
        // Bonus ramps up to its peak at half the tolerance and decays once
        // the movement exceeds the tolerance.
        let bonus_shape = if shift <= 0.5 * self.tolerance {
            shift / (0.5 * self.tolerance)
        } else {
            (1.0 - (shift - 0.5 * self.tolerance) / self.tolerance).max(0.0)
        };
        let bonus = self.regularization_bonus * bonus_shape;
        match self.metric {
            QualityMetric::AccuracyPercent => self.baseline - self.sensitivity * excess + bonus,
            QualityMetric::Perplexity => {
                (self.baseline - bonus * self.baseline) * (1.0 + self.sensitivity * excess)
            }
        }
    }

    /// Quality change relative to the baseline, signed so that positive is
    /// always "better" regardless of the metric.
    #[must_use]
    pub fn quality_delta(&self, relative_weight_shift: f64) -> f64 {
        let q = self.quality(relative_weight_shift);
        match self.metric {
            QualityMetric::AccuracyPercent => q - self.baseline,
            QualityMetric::Perplexity => self.baseline - q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_shifts_cost_nothing() {
        let p = AccuracyProxy::conv_classifier(71.0);
        assert!((p.quality(0.0) - 71.0).abs() < 1e-9);
        assert!(p.quality(0.2) >= 70.99, "movement inside tolerance is free");
    }

    #[test]
    fn large_shifts_cost_accuracy_monotonically() {
        let p = AccuracyProxy::conv_classifier(71.0);
        let a = p.quality(0.4);
        let b = p.quality(0.8);
        assert!(a < 71.0);
        assert!(b < a);
    }

    #[test]
    fn transformer_models_can_gain_slightly() {
        let p = AccuracyProxy::transformer_classifier(81.0);
        let mild = p.quality(0.14);
        assert!(
            mild > 81.0,
            "mild regularization should give a small bonus, got {mild}"
        );
        assert!(mild < 81.5, "bonus must stay small");
    }

    #[test]
    fn conv_models_never_gain() {
        let p = AccuracyProxy::conv_classifier(71.0);
        for s in [0.0, 0.1, 0.2, 0.3, 0.5] {
            assert!(p.quality(s) <= 71.0 + 1e-9);
        }
    }

    #[test]
    fn perplexity_increases_with_excess_shift() {
        let p = AccuracyProxy::language_model(28.7);
        assert!(p.quality(0.6) > 28.7);
        assert!(p.quality(0.9) > p.quality(0.6));
    }

    #[test]
    fn quality_delta_sign_convention() {
        let acc = AccuracyProxy::conv_classifier(71.0);
        assert!(acc.quality_delta(0.9) < 0.0);
        let ppl = AccuracyProxy::language_model(28.7);
        assert!(ppl.quality_delta(0.9) < 0.0);
        let vit = AccuracyProxy::transformer_classifier(81.0);
        assert!(vit.quality_delta(0.14) > 0.0);
    }

    #[test]
    fn negative_shift_is_clamped() {
        let p = AccuracyProxy::detector(37.0);
        assert!((p.quality(-0.5) - 37.0).abs() < 1e-9);
    }
}
