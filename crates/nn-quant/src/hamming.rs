//! Two's-complement Hamming utilities and the interpolated HR of Eq. 5.
//!
//! The Hamming Rate (HR) of a set of quantized weights is the fraction of
//! 1-bits among all stored bits (Eq. 3 of the paper); it upper-bounds the
//! instantaneous toggle rate `Rtog` of a PIM bank (Eq. 4) because a stored
//! 0-bit can never contribute a toggle on the partial-product wire.
//!
//! HR of an integer is not differentiable, so the LHR regularizer relies on
//! the *interpolated* HR of a floating-point weight (Eq. 5): linear
//! interpolation between the HR of the two integers adjacent to `w / s`.
//! The gradient of that interpolation is the slope of the segment, which is
//! what pulls weights towards local HR minima during training.

use serde::{Deserialize, Serialize};

/// Number of 1-bits in the two's-complement representation of `v` using
/// `bits` bits (`bits` in 2..=8).
///
/// # Panics
///
/// Panics if `bits` is outside `2..=8` or `v` is not representable.
#[must_use]
pub fn hamming_value(v: i32, bits: u32) -> u32 {
    assert!((2..=8).contains(&bits), "bits must be in 2..=8, got {bits}");
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    assert!(
        (min..=max).contains(&v),
        "value {v} not representable in {bits}-bit two's complement"
    );
    let mask = (1u32 << bits) - 1;
    ((v as u32) & mask).count_ones()
}

/// Hamming value (total number of 1-bits) of an INT8 slice.
///
/// Weights are packed eight at a time into a `u64` word so one `popcount`
/// instruction counts 64 stored bits; the scalar per-byte path only handles
/// the trailing `len % 8` weights.
#[must_use]
pub fn hamming_value_i8(weights: &[i8]) -> u64 {
    let mut ones = 0u64;
    let mut chunks = weights.chunks_exact(8);
    for chunk in &mut chunks {
        let mut bytes = [0u8; 8];
        for (b, &w) in bytes.iter_mut().zip(chunk) {
            *b = w as u8;
        }
        ones += u64::from(u64::from_le_bytes(bytes).count_ones());
    }
    ones + hamming_value_i8_scalar(chunks.remainder())
}

/// Reference per-`i8` implementation of [`hamming_value_i8`], kept for the
/// remainder path and as the baseline the packed kernel is benchmarked and
/// tested against.
#[must_use]
pub fn hamming_value_i8_scalar(weights: &[i8]) -> u64 {
    weights
        .iter()
        .map(|&w| u64::from((w as u8).count_ones()))
        .sum()
}

/// Hamming rate of an INT8 slice: 1-bits divided by total bits (Eq. 3).
/// Returns 0 for an empty slice.
#[must_use]
pub fn hamming_rate_i8(weights: &[i8]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    hamming_value_i8(weights) as f64 / (weights.len() as f64 * 8.0)
}

/// Hamming rate of a slice interpreted at an arbitrary precision
/// (e.g. INT4 values stored in `i8`).
///
/// # Panics
///
/// Panics if any value is not representable at that precision.
#[must_use]
pub fn hamming_rate(weights: &[i8], bits: u32) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    if bits == 8 {
        // Every i8 is representable at 8 bits: take the packed-popcount path.
        return hamming_value_i8(weights) as f64 / (weights.len() as f64 * 8.0);
    }
    let ones: u64 = weights
        .iter()
        .map(|&w| u64::from(hamming_value(i32::from(w), bits)))
        .sum();
    ones as f64 / (weights.len() as f64 * f64::from(bits))
}

/// Per-integer HR lookup table for a given precision.
///
/// `table[i]` is the HR (in `[0, 1]`) of the integer `i + min_value`, i.e.
/// the table is indexed from the most negative representable value upward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HrTable {
    bits: u32,
    values: Vec<f64>,
}

impl HrTable {
    /// Builds the table for `bits`-bit two's complement.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8");
        let min = -(1i32 << (bits - 1));
        let max = (1i32 << (bits - 1)) - 1;
        let values = (min..=max)
            .map(|v| f64::from(hamming_value(v, bits)) / f64::from(bits))
            .collect();
        Self { bits, values }
    }

    /// Precision of the table in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Most negative representable integer.
    #[must_use]
    pub fn min_value(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Most positive representable integer.
    #[must_use]
    pub fn max_value(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// HR of an integer, clamping out-of-range values to the nearest
    /// representable integer (matching the quantizer's clamping behaviour).
    #[must_use]
    pub fn hr(&self, v: i32) -> f64 {
        let clamped = v.clamp(self.min_value(), self.max_value());
        self.values[(clamped - self.min_value()) as usize]
    }

    /// Integers that are local minima of the HR function (lower HR than both
    /// neighbours, with ties counting as minima).  These are the attractors
    /// LHR pulls weights towards (0, ±8, ±16 … for INT8).
    #[must_use]
    pub fn local_minima(&self) -> Vec<i32> {
        let mut out = Vec::new();
        for v in self.min_value()..=self.max_value() {
            let here = self.hr(v);
            let left = if v == self.min_value() {
                f64::INFINITY
            } else {
                self.hr(v - 1)
            };
            let right = if v == self.max_value() {
                f64::INFINITY
            } else {
                self.hr(v + 1)
            };
            if here <= left && here <= right {
                out.push(v);
            }
        }
        out
    }
}

/// Result of evaluating the interpolated HR of a floating-point weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterpolatedHr {
    /// Interpolated HR value in `[0, 1]`.
    pub value: f64,
    /// Gradient of the interpolated HR with respect to the *float* weight
    /// (i.e. already divided by the quantization scale).
    pub gradient: f64,
}

/// Interpolated HR of a floating-point weight `w` under scale `s` (Eq. 5).
///
/// `low = ⌊w/s⌋`, `high = ⌈w/s⌉`, `p = w/s − low`, and
/// `HR(w) = (1−p)·HR[low] + p·HR[high]`.  The gradient is the segment slope
/// `(HR[high] − HR[low]) / s`; at exact integers the gradient is defined as 0
/// (the weight already sits on a lattice point).
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
#[must_use]
pub fn interpolated_hr(w: f64, scale: f64, table: &HrTable) -> InterpolatedHr {
    assert!(scale > 0.0, "quantization scale must be positive");
    let x = w / scale;
    let low = x.floor();
    let high = x.ceil();
    if (low - high).abs() < f64::EPSILON {
        return InterpolatedHr {
            value: table.hr(low as i32),
            gradient: 0.0,
        };
    }
    let p = x - low;
    let hr_low = table.hr(low as i32);
    let hr_high = table.hr(high as i32);
    InterpolatedHr {
        value: (1.0 - p) * hr_low + p * hr_high,
        gradient: (hr_high - hr_low) / scale,
    }
}

/// Gradient (per float unit) of a *box-smoothed* interpolated HR.
///
/// The exact interpolated HR of Eq. 5 only sees the two integers adjacent to
/// the weight, so a deterministic full-batch optimiser can never carry a
/// weight across a lattice point where the HR is locally flat.  Real QAT runs
/// do cross such points because stochastic task gradients jitter the weights
/// between steps.  To recover that basin-hopping ability without stochastic
/// noise, the training loop may use the gradient of the smoothed landscape
/// `S(w) = mean_{k=-R..R} HR_interp(w + k·s)`, whose minima coincide with the
/// wide low-HR basins (0, ±8, ±16 …) the paper's Fig. 7 shows the weights
/// concentrating in.  `radius_lsb = 0` degenerates to the exact Eq. 5 slope.
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
#[must_use]
pub fn smoothed_hr_gradient(w: f64, scale: f64, table: &HrTable, radius_lsb: u32) -> f64 {
    assert!(scale > 0.0, "quantization scale must be positive");
    let r = i64::from(radius_lsb);
    let mut sum = 0.0;
    for k in -r..=r {
        sum += interpolated_hr(w + k as f64 * scale, scale, table).gradient;
    }
    sum / (2 * r + 1) as f64
}

/// Precomputed lookup for [`smoothed_hr_gradient`] at a fixed scale and
/// radius.
///
/// The gradient of the interpolated HR (Eq. 5) is piecewise constant on each
/// lattice cell `[q·s, (q+1)·s)`, so the box-smoothed gradient is too: it
/// only depends on `q = ⌊w/s⌋`.  Precomputing one slope per cell turns the
/// `2·radius + 1` interpolations per weight of the training hot loop into a
/// single table lookup.  At exact lattice points the gradient is 0, matching
/// [`interpolated_hr`].
#[derive(Debug, Clone)]
pub struct SmoothedHrSlopes {
    scale: f64,
    /// Slope (per float unit) for cell `q`, indexed by `q - q_min`.
    slopes: Vec<f64>,
    q_min: i64,
}

impl SmoothedHrSlopes {
    /// Builds the per-cell slope table.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    #[must_use]
    pub fn new(table: &HrTable, scale: f64, radius_lsb: u32) -> Self {
        assert!(scale > 0.0, "quantization scale must be positive");
        let r = i64::from(radius_lsb);
        // Outside [min - r - 1, max + r] every contributing cell is clamped
        // flat, so its smoothed slope is exactly 0.
        let q_min = i64::from(table.min_value()) - r - 1;
        let q_max = i64::from(table.max_value()) + r;
        let slopes = (q_min..=q_max)
            .map(|q| {
                let mut sum = 0.0;
                for k in -r..=r {
                    let cell = q + k;
                    let hr_low =
                        table.hr(cell.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32);
                    let hr_high =
                        table.hr((cell + 1).clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32);
                    sum += (hr_high - hr_low) / scale;
                }
                sum / (2 * r + 1) as f64
            })
            .collect();
        Self {
            scale,
            slopes,
            q_min,
        }
    }

    /// Smoothed gradient at `w` (per float unit), via one table lookup.
    #[must_use]
    pub fn gradient(&self, w: f64) -> f64 {
        let x = w / self.scale;
        let low = x.floor();
        if (low - x.ceil()).abs() < f64::EPSILON {
            // Exact lattice point: Eq. 5 defines the gradient as 0.
            return 0.0;
        }
        let idx =
            (low as i64).clamp(self.q_min, self.q_min + self.slopes.len() as i64 - 1) - self.q_min;
        self.slopes[idx as usize]
    }
}

/// Mean interpolated HR of a float slice (the value half of
/// [`layer_interpolated_hr`], without materialising the gradient vector).
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
#[must_use]
pub fn layer_mean_hr(weights: &[f32], scale: f64, table: &HrTable) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for &w in weights {
        sum += interpolated_hr(f64::from(w), scale, table).value;
    }
    sum / weights.len() as f64
}

/// Mean interpolated HR of a float slice together with its per-element
/// gradients (used by the LHR loss).
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
#[must_use]
pub fn layer_interpolated_hr(weights: &[f32], scale: f64, table: &HrTable) -> (f64, Vec<f64>) {
    if weights.is_empty() {
        return (0.0, Vec::new());
    }
    let n = weights.len() as f64;
    let mut sum = 0.0;
    let mut grads = Vec::with_capacity(weights.len());
    for &w in weights {
        let h = interpolated_hr(f64::from(w), scale, table);
        sum += h.value;
        grads.push(h.gradient / n);
    }
    (sum / n, grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_value_matches_twos_complement() {
        assert_eq!(hamming_value(0, 8), 0);
        assert_eq!(hamming_value(8, 8), 1);
        assert_eq!(hamming_value(-8, 8), 5); // 1111_1000
        assert_eq!(hamming_value(-1, 8), 8); // 1111_1111
        assert_eq!(hamming_value(127, 8), 7);
        assert_eq!(hamming_value(-128, 8), 1); // 1000_0000
        assert_eq!(hamming_value(-1, 4), 4); // 1111
        assert_eq!(hamming_value(7, 4), 3);
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn out_of_range_value_panics() {
        let _ = hamming_value(8, 4);
    }

    #[test]
    fn hamming_rate_i8_of_known_patterns() {
        assert_eq!(hamming_rate_i8(&[]), 0.0);
        assert_eq!(hamming_rate_i8(&[0, 0, 0]), 0.0);
        assert_eq!(hamming_rate_i8(&[-1, -1]), 1.0);
        // 0x0F and 0xF0 patterns: exactly half the bits set.
        assert_eq!(hamming_rate_i8(&[15, 15]), 0.5);
    }

    #[test]
    fn small_negatives_have_high_hr_small_positives_low_hr() {
        // The asymmetry WDS exploits: |w| small and negative ⇒ many 1s.
        for w in 1i8..=7 {
            let pos = hamming_rate_i8(&[w]);
            let neg = hamming_rate_i8(&[-w]);
            assert!(neg > pos, "HR(-{w}) should exceed HR({w})");
        }
    }

    #[test]
    fn int8_table_minima_include_the_papers_attractors() {
        let table = HrTable::new(8);
        let minima = table.local_minima();
        for attractor in [-8, 0, 8, 16] {
            assert!(
                minima.contains(&attractor),
                "{attractor} should be a local HR minimum"
            );
        }
        // Small negative odd values are never minima.
        assert!(!minima.contains(&-3));
    }

    #[test]
    fn table_clamps_out_of_range_queries() {
        let table = HrTable::new(8);
        assert_eq!(table.hr(300), table.hr(127));
        assert_eq!(table.hr(-300), table.hr(-128));
    }

    #[test]
    fn interpolated_hr_matches_paper_examples() {
        // Paper Fig. 7-(b): HR(-0.62) = 0.62 and HR(6.4) = 0.3, each with a
        // segment slope of magnitude 1 and 0.125 respectively.  The paper
        // quotes the slopes as descent directions; here `gradient` is the
        // true derivative dHR/dw, so the signs are flipped relative to the
        // figure caption but the descent behaviour is identical.
        let table = HrTable::new(8);
        let a = interpolated_hr(-0.62, 1.0, &table);
        assert!((a.value - 0.62).abs() < 1e-9, "value {}", a.value);
        assert!(
            (a.gradient.abs() - 1.0).abs() < 1e-9,
            "gradient {}",
            a.gradient
        );
        assert!(a.gradient < 0.0, "HR falls as the weight moves towards 0");
        let b = interpolated_hr(6.4, 1.0, &table);
        assert!((b.value - 0.3).abs() < 1e-9, "value {}", b.value);
        assert!(
            (b.gradient.abs() - 0.125).abs() < 1e-9,
            "gradient {}",
            b.gradient
        );
        assert!(b.gradient > 0.0, "HR falls as the weight moves towards 6");
    }

    #[test]
    fn interpolated_hr_at_integers_has_zero_gradient() {
        let table = HrTable::new(8);
        let h = interpolated_hr(8.0, 1.0, &table);
        assert_eq!(h.gradient, 0.0);
        assert!((h.value - 0.125).abs() < 1e-12);
    }

    #[test]
    fn interpolated_hr_scales_with_quant_scale() {
        let table = HrTable::new(8);
        // Same lattice position, different scale: value equal, gradient scaled.
        let a = interpolated_hr(0.31, 0.5, &table);
        let b = interpolated_hr(0.62, 1.0, &table);
        assert!((a.value - b.value).abs() < 1e-9);
        assert!((a.gradient - 2.0 * b.gradient).abs() < 1e-9);
    }

    #[test]
    fn gradient_descends_towards_local_minimum() {
        // Starting between -1 (HR 1.0) and 0 (HR 0.0), following the negative
        // gradient must move the weight towards 0.
        let table = HrTable::new(8);
        let mut w = -0.4f64;
        for _ in 0..100 {
            let h = interpolated_hr(w, 1.0, &table);
            w -= 0.01 * h.gradient;
        }
        assert!(w > -0.4, "weight should have moved towards 0, got {w}");
        let final_hr = interpolated_hr(w, 1.0, &table).value;
        assert!(final_hr < 0.4);
    }

    #[test]
    fn smoothed_gradient_with_zero_radius_matches_eq5() {
        let table = HrTable::new(8);
        for w in [-3.4f64, -0.62, 2.1, 6.4] {
            let exact = interpolated_hr(w, 1.0, &table).gradient;
            let smoothed = smoothed_hr_gradient(w, 1.0, &table, 0);
            assert!((exact - smoothed).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothed_gradient_sees_across_flat_segments() {
        // Between -3 and -2 the exact HR is flat (both have 7 one-bits), so
        // Eq. 5 gives zero gradient; the smoothed landscape still points
        // towards the wide basin at 0.
        let table = HrTable::new(8);
        let exact = interpolated_hr(-2.5, 1.0, &table).gradient;
        assert_eq!(exact, 0.0);
        let smoothed = smoothed_hr_gradient(-2.5, 1.0, &table, 4);
        assert!(
            smoothed < 0.0,
            "smoothed gradient should pull -2.5 towards 0, got {smoothed}"
        );
    }

    #[test]
    fn smoothed_gradient_descent_reaches_a_wide_basin() {
        let table = HrTable::new(8);
        let mut w = -5.3f64;
        for _ in 0..1500 {
            w -= 0.2 * smoothed_hr_gradient(w, 1.0, &table, 4);
        }
        let hr = table.hr(w.round() as i32);
        assert!(
            hr <= 0.625,
            "weight should have reached a low-HR basin, ended at {w} (HR {hr})"
        );
    }

    #[test]
    fn packed_popcount_matches_scalar_reference() {
        // Lengths around the 8-weight chunk boundary, including remainders.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1000] {
            let weights: Vec<i8> = (0..len)
                .map(|i| ((i * 37 + 11) % 256) as u8 as i8)
                .collect();
            assert_eq!(
                hamming_value_i8(&weights),
                hamming_value_i8_scalar(&weights),
                "len {len}"
            );
        }
    }

    #[test]
    fn slope_table_matches_smoothed_gradient() {
        let table = HrTable::new(8);
        for radius in [0u32, 1, 4] {
            for scale in [1.0, 0.043] {
                let slopes = SmoothedHrSlopes::new(&table, scale, radius);
                for i in -4000..4000 {
                    // Sweep across and beyond the INT8 range, off-lattice.
                    let w = (f64::from(i) / 13.0 + 0.21) * scale;
                    let expected = smoothed_hr_gradient(w, scale, &table, radius);
                    let got = slopes.gradient(w);
                    assert!(
                        (expected - got).abs() < 1e-12,
                        "radius {radius} scale {scale} w {w}: {expected} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn slope_table_is_zero_at_lattice_points_and_far_outside() {
        let table = HrTable::new(8);
        let slopes = SmoothedHrSlopes::new(&table, 1.0, 4);
        assert_eq!(slopes.gradient(8.0), 0.0);
        assert_eq!(slopes.gradient(-3.0), 0.0);
        assert_eq!(slopes.gradient(400.5), 0.0);
        assert_eq!(slopes.gradient(-400.5), 0.0);
    }

    #[test]
    fn layer_mean_hr_matches_full_computation() {
        let table = HrTable::new(8);
        let weights: Vec<f32> = (0..257).map(|i| (i as f32) * 0.37 - 40.0).collect();
        let (mean, _) = layer_interpolated_hr(&weights, 0.5, &table);
        assert_eq!(
            layer_mean_hr(&weights, 0.5, &table).to_bits(),
            mean.to_bits()
        );
    }

    #[test]
    fn layer_interpolated_hr_averages_elementwise_values() {
        let table = HrTable::new(8);
        let weights = [0.0f32, 8.0, -8.0];
        let (mean, grads) = layer_interpolated_hr(&weights, 1.0, &table);
        let expected = (0.0 + 0.125 + 0.625) / 3.0;
        assert!((mean - expected).abs() < 1e-9);
        assert_eq!(grads.len(), 3);
        assert!(
            grads.iter().all(|g| g.abs() < 1e-12),
            "integer weights have zero gradient"
        );
    }

    #[test]
    fn empty_layer_is_well_behaved() {
        let table = HrTable::new(8);
        let (mean, grads) = layer_interpolated_hr(&[], 1.0, &table);
        assert_eq!(mean, 0.0);
        assert!(grads.is_empty());
    }

    #[test]
    fn int4_hamming_rate() {
        // -1 in INT4 = 1111 ⇒ HR 1.0; 1 = 0001 ⇒ HR 0.25.
        assert_eq!(hamming_rate(&[-1], 4), 1.0);
        assert_eq!(hamming_rate(&[1], 4), 0.25);
        assert_eq!(hamming_rate(&[-1, 1], 4), 0.625);
    }
}
