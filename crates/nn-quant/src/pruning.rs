//! Gradual magnitude pruning (GMP) for the comparison experiment (Fig. 15).
//!
//! The paper compares LHR/WDS against network pruning: zeroing weights also
//! lowers HR (a zero contributes no 1-bits), but at higher sparsity targets
//! it starts to cost accuracy, whereas LHR moves weights only locally.  The
//! two are orthogonal and can be combined.
//!
//! This module implements the standard gradual-magnitude schedule: the
//! sparsity target ramps up over a number of steps, and at each step the
//! smallest-magnitude weights are zeroed.

use serde::{Deserialize, Serialize};

use crate::hamming::hamming_rate;
use crate::quant::QuantizedLayer;
use crate::tensor::Tensor;

/// Configuration of a gradual magnitude pruning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Final fraction of weights to zero, in `[0, 1)`.
    pub target_sparsity: f64,
    /// Number of pruning steps over which the target ramps up (cubic
    /// schedule, as in the GMP reference implementation).
    pub steps: usize,
}

impl PruningConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the target sparsity is outside `[0, 1)` or `steps` is zero.
    #[must_use]
    pub fn new(target_sparsity: f64, steps: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&target_sparsity),
            "sparsity must be in [0,1)"
        );
        assert!(steps > 0, "at least one pruning step is required");
        Self {
            target_sparsity,
            steps,
        }
    }
}

/// Outcome of pruning one float layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningOutcome {
    /// The pruned float weights.
    pub weights: Vec<f32>,
    /// Achieved sparsity (fraction of exact zeros).
    pub sparsity: f64,
    /// RMS change relative to the original weights, normalised by the
    /// original standard deviation (accuracy-risk proxy, same convention as
    /// [`crate::qat::QatOutcome::relative_weight_shift`]).
    pub relative_weight_shift: f64,
}

/// Prunes a float tensor to the target sparsity with a cubic GMP schedule.
#[must_use]
pub fn prune_tensor(tensor: &Tensor, config: &PruningConfig) -> PruningOutcome {
    let mut weights: Vec<f32> = tensor.data().to_vec();
    let n = weights.len();
    if n == 0 {
        return PruningOutcome {
            weights,
            sparsity: 0.0,
            relative_weight_shift: 0.0,
        };
    }
    for step in 1..=config.steps {
        // Cubic ramp: s_t = s_f * (1 - (1 - t/T)^3).
        let t = step as f64 / config.steps as f64;
        let sparsity_now = config.target_sparsity * (1.0 - (1.0 - t).powi(3));
        let prune_count = (sparsity_now * n as f64).round() as usize;
        if prune_count == 0 {
            continue;
        }
        // Find the magnitude threshold for this step.
        let mut magnitudes: Vec<f32> = weights.iter().map(|w| w.abs()).collect();
        magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let threshold = magnitudes[(prune_count - 1).min(n - 1)];
        for w in &mut weights {
            if w.abs() <= threshold {
                *w = 0.0;
            }
        }
    }
    let zeros = weights.iter().filter(|w| **w == 0.0).count();
    let pruned = Tensor::from_vec(tensor.shape().to_vec(), weights.clone());
    let shift = f64::from(pruned.rms_diff(tensor)) / f64::from(tensor.std().max(1e-12));
    PruningOutcome {
        weights,
        sparsity: zeros as f64 / n as f64,
        relative_weight_shift: shift,
    }
}

/// Prunes and then quantizes a layer, returning the layer and its HR.
#[must_use]
pub fn prune_and_quantize(
    name: &str,
    tensor: &Tensor,
    config: &PruningConfig,
    bits: u32,
) -> (QuantizedLayer, PruningOutcome) {
    let outcome = prune_tensor(tensor, config);
    let pruned = Tensor::from_vec(tensor.shape().to_vec(), outcome.weights.clone());
    let layer = QuantizedLayer::from_tensor(name, &pruned, bits);
    (layer, outcome)
}

/// HR of a pruned-and-quantized weight set, for quick comparisons.
#[must_use]
pub fn pruned_hr(tensor: &Tensor, config: &PruningConfig, bits: u32) -> f64 {
    let (layer, _) = prune_and_quantize("tmp", tensor, config, bits);
    hamming_rate(&layer.weights, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_tensor(seed: u64) -> Tensor {
        Tensor::randn(vec![8192], 0.04, seed)
    }

    #[test]
    fn pruning_hits_the_target_sparsity() {
        let t = layer_tensor(1);
        for target in [0.1, 0.3, 0.5] {
            let out = prune_tensor(&t, &PruningConfig::new(target, 10));
            assert!(
                (out.sparsity - target).abs() < 0.02,
                "target {target}, achieved {}",
                out.sparsity
            );
        }
    }

    #[test]
    fn higher_sparsity_means_lower_hr_but_larger_shift() {
        let t = layer_tensor(2);
        let light = prune_tensor(&t, &PruningConfig::new(0.1, 10));
        let heavy = prune_tensor(&t, &PruningConfig::new(0.5, 10));
        assert!(heavy.relative_weight_shift > light.relative_weight_shift);
        let hr_light = pruned_hr(&t, &PruningConfig::new(0.1, 10), 8);
        let hr_heavy = pruned_hr(&t, &PruningConfig::new(0.5, 10), 8);
        assert!(hr_heavy < hr_light);
    }

    #[test]
    fn pruning_reduces_hr_relative_to_unpruned() {
        let t = layer_tensor(3);
        let unpruned = QuantizedLayer::from_tensor("l", &t, 8).hamming_rate();
        let pruned = pruned_hr(&t, &PruningConfig::new(0.3, 10), 8);
        assert!(pruned < unpruned);
    }

    #[test]
    fn pruned_weights_are_exactly_zero() {
        let t = layer_tensor(4);
        let (layer, out) = prune_and_quantize("l", &t, &PruningConfig::new(0.4, 8), 8);
        let zero_q = layer.weights.iter().filter(|&&w| w == 0).count();
        // Every pruned weight quantizes to 0 (other weights may too).
        assert!(zero_q as f64 / layer.len() as f64 >= out.sparsity - 1e-9);
    }

    #[test]
    fn single_step_schedule_prunes_in_one_shot() {
        let t = layer_tensor(5);
        let out = prune_tensor(&t, &PruningConfig::new(0.25, 1));
        assert!((out.sparsity - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn full_sparsity_is_rejected() {
        let _ = PruningConfig::new(1.0, 10);
    }

    #[test]
    fn empty_tensor_is_handled() {
        let t = Tensor::zeros(vec![0]);
        let out = prune_tensor(&t, &PruningConfig::new(0.5, 4));
        assert_eq!(out.sparsity, 0.0);
        assert!(out.weights.is_empty());
    }
}
