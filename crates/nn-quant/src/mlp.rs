//! A genuinely trainable MLP classifier on synthetic data.
//!
//! Every accuracy number for the large networks in this reproduction goes
//! through a documented proxy model (see [`crate::accuracy`]).  To keep that
//! proxy honest, this module provides one place where accuracy is *measured*
//! end-to-end: a small two-layer MLP trained with plain SGD on synthetic
//! Gaussian clusters, then quantized with and without LHR and WDS.  The
//! integration tests assert that the measured accuracy drop from LHR/WDS is
//! small — the same qualitative claim the paper makes for ImageNet-scale
//! models.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::quant::QuantScheme;
use crate::tensor::Tensor;

/// A synthetic classification dataset: Gaussian clusters, one per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    /// Flattened feature vectors, `samples × features` row-major.
    pub features: Vec<f32>,
    /// Class label per sample.
    pub labels: Vec<usize>,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Number of classes.
    pub classes: usize,
}

impl SyntheticDataset {
    /// Generates `samples_per_class` points for each of `classes` Gaussian
    /// clusters in `feature_dim` dimensions.
    #[must_use]
    pub fn generate(
        classes: usize,
        samples_per_class: usize,
        feature_dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Cluster centres drawn once, spread enough to be separable but with
        // overlap so accuracy is not trivially 100 %.
        let centres: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..feature_dim).map(|_| rng.gen_range(-1.5..1.5)).collect())
            .collect();
        let mut features = Vec::with_capacity(classes * samples_per_class * feature_dim);
        let mut labels = Vec::with_capacity(classes * samples_per_class);
        let mut order: Vec<(usize, usize)> = (0..classes)
            .flat_map(|c| (0..samples_per_class).map(move |s| (c, s)))
            .collect();
        order.shuffle(&mut rng);
        for (class, _) in order {
            for &centre in &centres[class] {
                let noise: f32 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                features.push(centre + 0.45 * noise);
            }
            labels.push(class);
        }
        Self {
            features,
            labels,
            feature_dim,
            classes,
        }
    }

    /// Splits the dataset into a training part holding `train_fraction` of
    /// the samples and a test part holding the rest.  Samples are already
    /// shuffled at generation time, so a prefix split is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Self, Self) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let take = |range: std::ops::Range<usize>| Self {
            features: self.features[range.start * self.feature_dim..range.end * self.feature_dim]
                .to_vec(),
            labels: self.labels[range.clone()].to_vec(),
            feature_dim: self.feature_dim,
            classes: self.classes,
        };
        (take(0..cut), take(cut..self.len()))
    }

    /// Number of samples in the dataset.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The feature vector of sample `i`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }
}

/// A two-layer MLP: `features → hidden (ReLU) → classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// First-layer weights, `hidden × features` row-major.
    pub w1: Vec<f32>,
    /// First-layer bias.
    pub b1: Vec<f32>,
    /// Second-layer weights, `classes × hidden` row-major.
    pub w2: Vec<f32>,
    /// Second-layer bias.
    pub b2: Vec<f32>,
    /// Input dimensionality.
    pub features: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Mlp {
    /// Creates a randomly initialised MLP.
    #[must_use]
    pub fn new(features: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let w1 = Tensor::randn(
            vec![hidden * features],
            (2.0 / features as f32).sqrt(),
            seed,
        )
        .data()
        .to_vec();
        let w2 = Tensor::randn(
            vec![classes * hidden],
            (2.0 / hidden as f32).sqrt(),
            seed ^ 0x9e37,
        )
        .data()
        .to_vec();
        Self {
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; classes],
            features,
            hidden,
            classes,
        }
    }

    /// Forward pass returning the hidden activations and the logits.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut h = vec![0.0f32; self.hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let mut acc = self.b1[j];
            for (d, &xv) in x.iter().enumerate() {
                acc += self.w1[j * self.features + d] * xv;
            }
            *hj = acc.max(0.0);
        }
        let mut logits = vec![0.0f32; self.classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let mut acc = self.b2[c];
            for (j, &hv) in h.iter().enumerate() {
                acc += self.w2[c * self.hidden + j] * hv;
            }
            *logit = acc;
        }
        (h, logits)
    }

    /// Predicted class for one feature vector.
    #[must_use]
    pub fn predict(&self, x: &[f32]) -> usize {
        let (_, logits) = self.forward(x);
        argmax(&logits)
    }

    /// Classification accuracy over a dataset.
    #[must_use]
    pub fn accuracy(&self, data: &SyntheticDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| self.predict(data.sample(i)) == data.labels[i])
            .count();
        correct as f64 / data.len() as f64
    }

    /// Trains the MLP with plain SGD and a softmax cross-entropy loss.
    pub fn train(&mut self, data: &SyntheticDataset, epochs: usize, lr: f32, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = data.sample(i);
                let label = data.labels[i];
                let (h, logits) = self.forward(x);
                let probs = softmax(&logits);
                // Output-layer gradient: p - one_hot(label).
                let mut dlogits = probs;
                dlogits[label] -= 1.0;
                // Backprop into w2/b2 and the hidden layer.
                let mut dh = vec![0.0f32; self.hidden];
                for (c, &dl) in dlogits.iter().enumerate() {
                    for j in 0..self.hidden {
                        dh[j] += dl * self.w2[c * self.hidden + j];
                        self.w2[c * self.hidden + j] -= lr * dl * h[j];
                    }
                    self.b2[c] -= lr * dlogits[c];
                }
                for j in 0..self.hidden {
                    if h[j] <= 0.0 {
                        continue;
                    }
                    for (d, &xv) in x.iter().enumerate() {
                        self.w1[j * self.features + d] -= lr * dh[j] * xv;
                    }
                    self.b1[j] -= lr * dh[j];
                }
            }
        }
    }

    /// Returns a copy of the model with both weight matrices replaced by the
    /// provided float buffers (biases untouched).  Used to evaluate the
    /// accuracy of quantized / HR-optimised weights.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match.
    #[must_use]
    pub fn with_weights(&self, w1: Vec<f32>, w2: Vec<f32>) -> Self {
        assert_eq!(w1.len(), self.w1.len(), "w1 length mismatch");
        assert_eq!(w2.len(), self.w2.len(), "w2 length mismatch");
        Self {
            w1,
            w2,
            ..self.clone()
        }
    }

    /// Evaluates accuracy after fake-quantizing both layers at `bits`.
    #[must_use]
    pub fn quantized_accuracy(&self, data: &SyntheticDataset, bits: u32) -> f64 {
        let t1 = Tensor::from_vec(vec![self.w1.len()], self.w1.clone());
        let t2 = Tensor::from_vec(vec![self.w2.len()], self.w2.clone());
        let s1 = QuantScheme::fit(&t1, bits);
        let s2 = QuantScheme::fit(&t2, bits);
        let q1: Vec<f32> = self.w1.iter().map(|&w| s1.fake_quantize(w)).collect();
        let q2: Vec<f32> = self.w2.iter().map(|&w| s2.fake_quantize(w)).collect();
        self.with_weights(q1, q2).accuracy(data)
    }
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_setup() -> (Mlp, SyntheticDataset, SyntheticDataset) {
        let full = SyntheticDataset::generate(4, 180, 12, 11);
        let (train, test) = full.split(0.7);
        let mut mlp = Mlp::new(12, 24, 4, 5);
        mlp.train(&train, 20, 0.01, 99);
        (mlp, train, test)
    }

    #[test]
    fn dataset_shapes_are_consistent() {
        let d = SyntheticDataset::generate(3, 10, 5, 1);
        assert_eq!(d.len(), 30);
        assert_eq!(d.sample(0).len(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    fn training_beats_chance_by_a_wide_margin() {
        let (mlp, _train, test) = trained_setup();
        let acc = mlp.accuracy(&test);
        assert!(
            acc > 0.70,
            "trained accuracy should be well above 25 % chance, got {acc}"
        );
    }

    #[test]
    fn int8_quantization_costs_little_accuracy() {
        let (mlp, _train, test) = trained_setup();
        let float_acc = mlp.accuracy(&test);
        let q_acc = mlp.quantized_accuracy(&test, 8);
        assert!(float_acc - q_acc < 0.03, "float {float_acc}, int8 {q_acc}");
    }

    #[test]
    fn int4_quantization_costs_more_than_int8() {
        let (mlp, _train, test) = trained_setup();
        let q8 = mlp.quantized_accuracy(&test, 8);
        let q4 = mlp.quantized_accuracy(&test, 4);
        assert!(q4 <= q8 + 0.02);
    }

    #[test]
    fn with_weights_checks_lengths() {
        let mlp = Mlp::new(4, 8, 2, 1);
        let ok = mlp.with_weights(mlp.w1.clone(), mlp.w2.clone());
        assert_eq!(ok.w1, mlp.w1);
    }

    #[test]
    #[should_panic(expected = "w1 length mismatch")]
    fn wrong_weight_length_panics() {
        let mlp = Mlp::new(4, 8, 2, 1);
        let _ = mlp.with_weights(vec![0.0; 3], mlp.w2.clone());
    }

    #[test]
    fn softmax_sums_to_one_and_argmax_matches() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(argmax(&p), 2);
    }
}
