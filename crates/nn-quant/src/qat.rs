//! Quantization-aware training (QAT) loop with optional LHR regularization.
//!
//! The paper's baseline is a standard symmetric QAT recipe; LHR is a single
//! extra loss term added on top (its public integration point is literally
//! one line in a PyTorch training loop).  Reproducing a full vision or
//! language training run is out of scope here, so this module uses the
//! documented substitution from DESIGN.md:
//!
//! * The *task loss* is a **weight-regression proxy**: the fake-quantized
//!   weights should stay close to the original float weights (per-element
//!   squared error).  During real fine-tuning the task gradient likewise
//!   anchors the weights around their pre-trained values; the proxy keeps
//!   exactly that property while being dataset-free.
//! * Gradients flow through the quantizer with a straight-through estimator.
//! * LHR adds `λ · ∂L_HR/∂w` to the update, pulling weights towards local
//!   Hamming minima when doing so costs little task loss.
//!
//! The observable outcomes — how far HR falls and how much the weights move
//! from their baseline — are what the Table 2 / Fig. 12 / Fig. 13
//! experiments consume.

use serde::{Deserialize, Serialize};

use crate::hamming::{layer_mean_hr, HrTable, SmoothedHrSlopes};
use crate::lhr::LhrConfig;
use crate::quant::{QuantScheme, QuantizedLayer};
use crate::tensor::Tensor;

/// Configuration of the QAT loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QatConfig {
    /// Weight precision in bits (8 or 4 in the paper's experiments).
    pub bits: u32,
    /// Number of optimisation epochs (full passes over the weights).
    pub epochs: usize,
    /// Learning rate of the plain SGD update, expressed in LSB per unit
    /// gradient (the update is scaled by the quantization scale internally).
    pub learning_rate: f64,
    /// Width of the task-loss dead zone in LSB: weight movement below this
    /// distance from the original value incurs no task gradient.  This models
    /// the empirical tolerance of over-parameterised networks to small weight
    /// changes, which is what lets LHR relocate weights in the real training
    /// runs.
    pub anchor_dead_zone_lsb: f64,
    /// Radius (in LSB) of the smoothed-HR gradient used by the regularizer
    /// during training (see [`crate::hamming::smoothed_hr_gradient`]).  Zero
    /// uses the exact Eq. 5 slope; the default of 4 recovers the basin-hopping
    /// behaviour stochastic task gradients provide in a real framework.
    pub lhr_smoothing_radius_lsb: u32,
    /// Optional LHR regularization; `None` reproduces the baseline QAT.
    pub lhr: Option<LhrConfig>,
}

impl QatConfig {
    /// The baseline recipe the paper compares against (no LHR).
    #[must_use]
    pub const fn baseline(bits: u32) -> Self {
        Self {
            bits,
            epochs: 120,
            learning_rate: 0.3,
            anchor_dead_zone_lsb: 4.0,
            lhr_smoothing_radius_lsb: 4,
            lhr: None,
        }
    }

    /// Baseline plus the LHR regularizer at its default strength.
    #[must_use]
    pub const fn with_lhr(bits: u32) -> Self {
        Self {
            bits,
            epochs: 120,
            learning_rate: 0.3,
            anchor_dead_zone_lsb: 4.0,
            lhr_smoothing_radius_lsb: 4,
            lhr: Some(LhrConfig::default_strength()),
        }
    }
}

/// Outcome of running QAT on one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QatOutcome {
    /// The quantized layer after training.
    pub layer: QuantizedLayer,
    /// HR of the layer before training (plain round-to-nearest quantization).
    pub hr_before: f64,
    /// HR of the layer after training.
    pub hr_after: f64,
    /// RMS movement of the float weights relative to the original tensor,
    /// normalised by the original standard deviation (a proxy for how much
    /// the optimisation risked accuracy).
    pub relative_weight_shift: f64,
}

impl QatOutcome {
    /// Relative HR reduction achieved by the run, in `[0, 1]`.
    #[must_use]
    pub fn hr_reduction(&self) -> f64 {
        if self.hr_before <= 0.0 {
            0.0
        } else {
            ((self.hr_before - self.hr_after) / self.hr_before).max(0.0)
        }
    }
}

/// Runs the QAT loop on a single layer of float weights.
///
/// The quantization scale is fitted once from the original tensor and kept
/// fixed, matching per-layer static scaling.
#[must_use]
pub fn train_layer(name: &str, original: &Tensor, config: &QatConfig) -> QatOutcome {
    let scheme = QuantScheme::fit(original, config.bits);
    let table: HrTable = scheme.hr_table();
    let scale = scheme.scale();

    let baseline = QuantizedLayer::from_tensor(name, original, config.bits);
    let hr_before = baseline.hamming_rate();

    let mut weights: Vec<f32> = original.data().to_vec();
    let original_std = f64::from(original.std()).max(1e-12);

    // The smoothed-HR slope is piecewise constant per lattice cell, so one
    // table sized to this layer's scale serves every weight of every epoch.
    let slopes = config
        .lhr
        .map(|_| SmoothedHrSlopes::new(&table, scale, config.lhr_smoothing_radius_lsb));

    for _ in 0..config.epochs {
        // Both gradient terms are expressed in LSB (lattice) units so that
        // their balance is independent of the layer's quantization scale:
        //
        // * task gradient — weight-regression proxy with a dead zone: no
        //   pull while the weight stays within `anchor_dead_zone_lsb` of its
        //   original value, linear pull back beyond that;
        // * LHR gradient — slope of the interpolated HR (per lattice unit),
        //   scaled by λ, pulling towards the nearest low-HR lattice point.
        let lhr = config
            .lhr
            .map(|cfg| (cfg.lambda, layer_mean_hr(&weights, scale, &table)));
        for (i, w) in weights.iter_mut().enumerate() {
            let displacement_lsb = (f64::from(*w) - f64::from(original.data()[i])) / scale;
            let task_grad_lsb = displacement_lsb
                - displacement_lsb.clamp(-config.anchor_dead_zone_lsb, config.anchor_dead_zone_lsb);
            let reg_grad_lsb = match &lhr {
                // ∂(HR²)/∂w = 2·HR·∂HR/∂w; the smoothed slope is per float
                // unit, so multiply by the scale to express it per LSB.
                Some((lambda, mean_hr)) => {
                    let slope = slopes
                        .as_ref()
                        .expect("slope table exists whenever LHR is on")
                        .gradient(f64::from(*w));
                    lambda * 2.0 * mean_hr * slope * scale
                }
                None => 0.0,
            };
            *w -= (config.learning_rate * scale * (task_grad_lsb + reg_grad_lsb)) as f32;
        }
    }

    let trained = Tensor::from_vec(original.shape().to_vec(), weights);
    let layer = QuantizedLayer {
        name: name.to_string(),
        weights: scheme.quantize_tensor(&trained),
        scheme,
    };
    let hr_after = layer.hamming_rate();
    let relative_weight_shift = f64::from(trained.rms_diff(original)) / original_std;

    QatOutcome {
        layer,
        hr_before,
        hr_after,
        relative_weight_shift,
    }
}

/// Runs QAT over a set of layers, returning one outcome per layer in order.
///
/// Layers are independent (each trains on its own tensor with a
/// deterministic full-batch loop), so they fan out across worker threads;
/// results come back in layer order regardless of the thread count.
#[must_use]
pub fn train_network(layers: &[(String, Tensor)], config: &QatConfig) -> Vec<QatOutcome> {
    use rayon::prelude::*;
    layers
        .par_iter()
        .map(|(name, tensor)| train_layer(name, tensor, config))
        .collect()
}

/// Summary statistics across a network's per-layer outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NetworkHrSummary {
    /// Mean per-layer HR.
    pub hr_average: f64,
    /// Maximum per-layer HR.
    pub hr_max: f64,
    /// Mean relative weight shift across layers.
    pub mean_weight_shift: f64,
}

/// Aggregates per-layer outcomes into the HRaverage / HRmax figures the
/// paper's Table 2 reports.
#[must_use]
pub fn summarize(outcomes: &[QatOutcome]) -> NetworkHrSummary {
    if outcomes.is_empty() {
        return NetworkHrSummary::default();
    }
    let n = outcomes.len() as f64;
    NetworkHrSummary {
        hr_average: outcomes.iter().map(|o| o.hr_after).sum::<f64>() / n,
        hr_max: outcomes.iter().map(|o| o.hr_after).fold(0.0, f64::max),
        mean_weight_shift: outcomes
            .iter()
            .map(|o| o.relative_weight_shift)
            .sum::<f64>()
            / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_like_tensor(seed: u64) -> Tensor {
        // A realistic conv layer: zero-mean, most weights within a few LSB.
        Tensor::randn(vec![4096], 0.04, seed)
    }

    #[test]
    fn baseline_qat_barely_moves_weights() {
        let t = conv_like_tensor(3);
        let out = train_layer("conv", &t, &QatConfig::baseline(8));
        assert!(
            out.relative_weight_shift < 0.05,
            "shift {}",
            out.relative_weight_shift
        );
        assert!((out.hr_after - out.hr_before).abs() < 0.02);
        assert_eq!(
            out.layer.weights,
            QuantizedLayer::from_tensor("conv", &t, 8).weights
        );
    }

    #[test]
    fn lhr_reduces_hr_substantially() {
        let t = conv_like_tensor(4);
        let base = train_layer("conv", &t, &QatConfig::baseline(8));
        let lhr = train_layer("conv", &t, &QatConfig::with_lhr(8));
        assert!(
            lhr.hr_after < base.hr_after * 0.85,
            "LHR should cut HR by well over 15 %: baseline {}, lhr {}",
            base.hr_after,
            lhr.hr_after
        );
    }

    #[test]
    fn lhr_keeps_weights_close_to_original() {
        let t = conv_like_tensor(5);
        let out = train_layer("conv", &t, &QatConfig::with_lhr(8));
        // Weight movement stays a small fraction of the weight spread —
        // the "negligible accuracy loss" premise.
        assert!(
            out.relative_weight_shift < 0.35,
            "shift {}",
            out.relative_weight_shift
        );
    }

    #[test]
    fn stronger_lambda_trades_more_shift_for_lower_hr() {
        let t = conv_like_tensor(6);
        let weak = QatConfig {
            lhr: Some(LhrConfig::new(0.05)),
            ..QatConfig::with_lhr(8)
        };
        let strong = QatConfig {
            lhr: Some(LhrConfig::new(4.0)),
            ..QatConfig::with_lhr(8)
        };
        let w = train_layer("conv", &t, &weak);
        let s = train_layer("conv", &t, &strong);
        assert!(s.hr_after <= w.hr_after + 1e-9);
        assert!(s.relative_weight_shift >= w.relative_weight_shift - 1e-9);
    }

    #[test]
    fn int4_training_also_reduces_hr() {
        let t = conv_like_tensor(7);
        let base = train_layer("conv", &t, &QatConfig::baseline(4));
        let lhr = train_layer("conv", &t, &QatConfig::with_lhr(4));
        assert!(lhr.hr_after < base.hr_after);
        assert!(lhr.layer.weights.iter().all(|&w| (-8..=7).contains(&w)));
    }

    #[test]
    fn summary_aggregates_average_and_max() {
        let layers = vec![
            ("a".to_string(), conv_like_tensor(8)),
            ("b".to_string(), Tensor::randn(vec![2048], 0.08, 9)),
        ];
        let outcomes = train_network(&layers, &QatConfig::with_lhr(8));
        let s = summarize(&outcomes);
        assert_eq!(outcomes.len(), 2);
        assert!(s.hr_max >= s.hr_average);
        assert!(s.hr_average > 0.0);
    }

    #[test]
    fn hr_reduction_is_clamped_non_negative() {
        let o = QatOutcome {
            layer: QuantizedLayer::from_tensor("x", &conv_like_tensor(10), 8),
            hr_before: 0.3,
            hr_after: 0.4,
            relative_weight_shift: 0.0,
        };
        assert_eq!(o.hr_reduction(), 0.0);
    }

    #[test]
    fn empty_network_summary_is_default() {
        assert_eq!(summarize(&[]), NetworkHrSummary::default());
    }
}
