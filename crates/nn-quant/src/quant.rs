//! Symmetric integer quantization (INT4 / INT8).
//!
//! The paper's baseline is a standard symmetric, per-layer quantization-aware
//! training recipe; LHR, WDS and the PIM simulator all operate on the
//! resulting two's-complement integer weights.  This module provides the
//! scheme (bit width + scale), round-to-nearest quantization with clamping,
//! dequantization, and the [`QuantizedLayer`] container the rest of the
//! workspace passes around.

use serde::{Deserialize, Serialize};

use crate::hamming::{hamming_rate, HrTable};
use crate::tensor::Tensor;

/// A symmetric quantization scheme: bit width and positive scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantScheme {
    bits: u32,
    scale: f64,
}

impl QuantScheme {
    /// Creates a scheme with an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8` or `scale` is not positive.
    #[must_use]
    pub fn new(bits: u32, scale: f64) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8, got {bits}");
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite"
        );
        Self { bits, scale }
    }

    /// Derives a per-layer scale from the maximum absolute weight so that the
    /// full float range maps onto the representable integer range.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    #[must_use]
    pub fn fit(tensor: &Tensor, bits: u32) -> Self {
        let max_abs = f64::from(tensor.max_abs()).max(1e-8);
        let qmax = f64::from((1i32 << (bits - 1)) - 1);
        Self::new(bits, max_abs / qmax)
    }

    /// Bit width of the scheme.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantization scale (float units per LSB).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Most negative representable integer.
    #[must_use]
    pub fn qmin(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Most positive representable integer.
    #[must_use]
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Quantizes one float weight: round to nearest, clamp to range.
    #[must_use]
    pub fn quantize(&self, w: f32) -> i8 {
        let q = (f64::from(w) / self.scale).round() as i64;
        q.clamp(i64::from(self.qmin()), i64::from(self.qmax())) as i8
    }

    /// Dequantizes one integer back to float.
    #[must_use]
    pub fn dequantize(&self, q: i8) -> f32 {
        (f64::from(q) * self.scale) as f32
    }

    /// Quantizes a whole tensor.
    #[must_use]
    pub fn quantize_tensor(&self, tensor: &Tensor) -> Vec<i8> {
        tensor.data().iter().map(|&w| self.quantize(w)).collect()
    }

    /// "Fake quantization": quantize then dequantize, as used inside the QAT
    /// forward pass with a straight-through estimator.
    #[must_use]
    pub fn fake_quantize(&self, w: f32) -> f32 {
        self.dequantize(self.quantize(w))
    }

    /// The HR lookup table matching this scheme's bit width.
    #[must_use]
    pub fn hr_table(&self) -> HrTable {
        HrTable::new(self.bits)
    }
}

/// A quantized layer: integer weights plus the scheme that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLayer {
    /// Layer name (e.g. `"layer3.0.conv1"`).
    pub name: String,
    /// Quantized weights in row-major order.
    pub weights: Vec<i8>,
    /// The quantization scheme used.
    pub scheme: QuantScheme,
}

impl QuantizedLayer {
    /// Quantizes a float tensor into a layer.
    #[must_use]
    pub fn from_tensor(name: impl Into<String>, tensor: &Tensor, bits: u32) -> Self {
        let scheme = QuantScheme::fit(tensor, bits);
        Self {
            name: name.into(),
            weights: scheme.quantize_tensor(tensor),
            scheme,
        }
    }

    /// Hamming rate of the stored weights at the layer's precision (Eq. 3).
    #[must_use]
    pub fn hamming_rate(&self) -> f64 {
        hamming_rate(&self.weights, self.scheme.bits())
    }

    /// Number of stored weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the layer holds no weights.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Dequantized copy of the weights.
    #[must_use]
    pub fn dequantized(&self) -> Vec<f32> {
        self.weights
            .iter()
            .map(|&q| self.scheme.dequantize(q))
            .collect()
    }

    /// Mean absolute quantization error versus a float reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference length differs.
    #[must_use]
    pub fn mean_abs_error(&self, reference: &Tensor) -> f64 {
        assert_eq!(
            reference.len(),
            self.weights.len(),
            "reference length mismatch"
        );
        if self.is_empty() {
            return 0.0;
        }
        self.weights
            .iter()
            .zip(reference.data())
            .map(|(&q, &w)| (f64::from(self.scheme.dequantize(q)) - f64::from(w)).abs())
            .sum::<f64>()
            / self.weights.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_maps_max_abs_to_qmax() {
        let t = Tensor::from_vec(vec![3], vec![-1.0, 0.5, 2.0]);
        let s = QuantScheme::fit(&t, 8);
        assert_eq!(s.quantize(2.0), 127);
        assert_eq!(s.quantize(-2.0), -127);
        assert_eq!(s.quantize(0.0), 0);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let s = QuantScheme::new(8, 1.0);
        assert_eq!(s.quantize(2.4), 2);
        assert_eq!(s.quantize(2.6), 3);
        assert_eq!(s.quantize(-2.5), -3); // f64::round is away-from-zero on ties
    }

    #[test]
    fn quantize_clamps_to_range() {
        let s = QuantScheme::new(8, 1.0);
        assert_eq!(s.quantize(500.0), 127);
        assert_eq!(s.quantize(-500.0), -128);
        let s4 = QuantScheme::new(4, 1.0);
        assert_eq!(s4.quantize(100.0), 7);
        assert_eq!(s4.quantize(-100.0), -8);
    }

    #[test]
    fn dequantize_round_trips_within_half_lsb() {
        let s = QuantScheme::new(8, 0.03);
        for w in [-1.2f32, -0.4, 0.0, 0.7, 1.1] {
            let back = s.fake_quantize(w);
            assert!((back - w).abs() <= 0.5 * 0.03 + 1e-6, "w={w} back={back}");
        }
    }

    #[test]
    fn quantized_layer_hr_matches_free_function() {
        let t = Tensor::randn(vec![4096], 0.05, 11);
        let layer = QuantizedLayer::from_tensor("l0", &t, 8);
        let hr = hamming_rate(&layer.weights, 8);
        assert!((layer.hamming_rate() - hr).abs() < 1e-15);
        assert!(
            hr > 0.2 && hr < 0.8,
            "Gaussian weights should land near HR 0.5, got {hr}"
        );
    }

    #[test]
    fn mean_abs_error_is_sub_lsb_for_in_range_weights() {
        let t = Tensor::randn(vec![1024], 0.05, 5);
        let layer = QuantizedLayer::from_tensor("l0", &t, 8);
        let err = layer.mean_abs_error(&t);
        assert!(err <= 0.5 * layer.scheme.scale() + 1e-9);
    }

    #[test]
    fn int4_layer_uses_int4_range() {
        let t = Tensor::randn(vec![512], 0.05, 9);
        let layer = QuantizedLayer::from_tensor("l0", &t, 4);
        assert!(layer.weights.iter().all(|&w| (-8..=7).contains(&w)));
        assert_eq!(layer.scheme.bits(), 4);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn non_positive_scale_is_rejected() {
        let _ = QuantScheme::new(8, 0.0);
    }

    #[test]
    fn dequantized_length_matches() {
        let t = Tensor::randn(vec![100], 0.02, 3);
        let layer = QuantizedLayer::from_tensor("x", &t, 8);
        assert_eq!(layer.dequantized().len(), 100);
        assert!(!layer.is_empty());
    }
}
