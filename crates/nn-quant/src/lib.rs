//! # nn-quant — quantization stack, LHR regularizer and WDS
//!
//! This crate reproduces the *software* half of AIM: the quantization-time
//! machinery that lowers the Hamming Rate (HR) of the weights a PIM chip will
//! hold in its SRAM arrays.
//!
//! The original paper integrates its methods into PyTorch on real networks
//! (ResNet18, MobileNetV2, YOLOv5, ViT, Llama3.2-1B, GPT2).  Neither the
//! framework nor the datasets are available here, so the crate implements a
//! self-contained substitute:
//!
//! * [`tensor`] — a minimal dense tensor with the random initialisers needed
//!   to generate weight distributions with realistic statistics.
//! * [`hamming`] — two's-complement Hamming utilities: per-integer HR tables,
//!   the interpolated differentiable HR of Eq. 5 and its gradient.
//! * [`quant`] — symmetric INT4/INT8 quantization (scales, clamping,
//!   round-to-nearest, dequantization).
//! * [`qat`] — a quantization-aware-training loop using a
//!   weight-regression proxy task (stay close to the float weights) with a
//!   straight-through estimator; the baseline corresponds to the white-paper
//!   QAT recipe the paper compares against.
//! * [`lhr`] — the LHR regularization term of Eq. 6 (squared per-layer HR,
//!   penalising the worst layers hardest) plugged into the QAT loop.
//! * [`wds`] — Weight Distribution Shift (Algorithm 1): the +δ shift with
//!   overflow clamping and the exact shift-compensation identity.
//! * [`ptq`] — post-training-quantization emulations (OmniQuant-like for
//!   LLM layers, BRECQ-like for conv layers) and their combination with LHR.
//! * [`pruning`] — gradual magnitude pruning, for the comparison/combination
//!   experiment (paper Fig. 15).
//! * [`mlp`] — a genuinely trainable two-layer MLP on synthetic clustered
//!   data: the one place where accuracy is *measured*, not modelled, so the
//!   claim "LHR costs almost no accuracy" can be checked end-to-end.
//! * [`accuracy`] — the documented accuracy/perplexity proxy used for the
//!   large-network tables (Table 2/3, Fig. 13/15), mapping weight
//!   perturbation to an accuracy delta.
//!
//! # Example
//!
//! ```
//! use nn_quant::hamming::hamming_rate_i8;
//! use nn_quant::wds::{apply_wds, WdsConfig};
//!
//! // Small negative INT8 values carry many 1-bits...
//! let weights = vec![-3i8, -2, -1, 1, 2, 3];
//! let before = hamming_rate_i8(&weights);
//! // ...and shifting the distribution by +8 removes most of them.
//! let shifted = apply_wds(&weights, &WdsConfig::int8_default());
//! let after = hamming_rate_i8(&shifted.weights);
//! assert!(after < before);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod hamming;
pub mod lhr;
pub mod mlp;
pub mod pruning;
pub mod ptq;
pub mod qat;
pub mod quant;
pub mod tensor;
pub mod wds;

pub use hamming::{hamming_rate_i8, hamming_value_i8, interpolated_hr, InterpolatedHr};
pub use lhr::LhrConfig;
pub use qat::{QatConfig, QatOutcome};
pub use quant::{QuantScheme, QuantizedLayer};
pub use tensor::Tensor;
pub use wds::{apply_wds, WdsConfig, WdsOutcome};
