//! Minimal dense tensor used throughout the quantization stack.
//!
//! The reproduction does not need a full ML framework — only flat weight
//! buffers with shape metadata, Gaussian/Laplace initialisers that mimic the
//! statistics of trained conv and transformer layers, and a handful of
//! element-wise helpers used by the training loops.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense `f32` tensor with a row-major shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the product of the shape.
    #[must_use]
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { shape, data }
    }

    /// Creates a zero-filled tensor.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Samples a tensor from a zero-mean Gaussian with the given standard
    /// deviation, using a deterministic seed.
    ///
    /// Trained convolution and linear layers are well approximated by a
    /// zero-mean bell-shaped weight distribution, which is the property the
    /// LHR/WDS analysis relies on (paper Fig. 7).
    #[must_use]
    pub fn randn(shape: Vec<usize>, std: f32, seed: u64) -> Self {
        let len: usize = shape.iter().product();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..len).map(|_| gaussian(&mut rng) * std).collect();
        Self { shape, data }
    }

    /// Samples a tensor from a zero-mean Laplace distribution (heavier tails
    /// than Gaussian), typical of transformer MLP/projection layers.
    #[must_use]
    pub fn rand_laplace(shape: Vec<usize>, scale: f32, seed: u64) -> Self {
        let len: usize = shape.iter().product();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..len)
            .map(|_| {
                let u: f32 = rng.gen_range(-0.5..0.5);
                -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
            })
            .collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute value (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Arithmetic mean (0 for an empty tensor).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Population standard deviation (0 for an empty tensor).
    #[must_use]
    pub fn std(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .data
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / self.data.len() as f32;
        var.sqrt()
    }

    /// Root-mean-square difference to another tensor of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the tensors have different lengths.
    #[must_use]
    pub fn rms_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.len(), other.len(), "rms_diff requires equal lengths");
        if self.is_empty() {
            return 0.0;
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        (sum / self.len() as f32).sqrt()
    }
}

/// Draws one standard-normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0; 6]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.shape(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn mismatched_shape_panics() {
        let _ = Tensor::from_vec(vec![2, 3], vec![1.0; 5]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(vec![128], 0.05, 7);
        let b = Tensor::randn(vec![128], 0.05, 7);
        let c = Tensor::randn(vec![128], 0.05, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_statistics_are_plausible() {
        let t = Tensor::randn(vec![50_000], 0.1, 42);
        assert!(t.mean().abs() < 0.005, "mean {}", t.mean());
        assert!((t.std() - 0.1).abs() < 0.01, "std {}", t.std());
    }

    #[test]
    fn laplace_has_heavier_tails_than_gaussian() {
        let g = Tensor::randn(vec![50_000], 0.1, 1);
        let l = Tensor::rand_laplace(vec![50_000], 0.1 / std::f32::consts::SQRT_2, 1);
        // Same variance target, but Laplace has a larger max.
        assert!(l.max_abs() > g.max_abs());
    }

    #[test]
    fn zeros_and_empty() {
        let z = Tensor::zeros(vec![4, 4]);
        assert_eq!(z.max_abs(), 0.0);
        let e = Tensor::zeros(vec![0]);
        assert!(e.is_empty());
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.std(), 0.0);
    }

    #[test]
    fn rms_diff_of_identical_tensors_is_zero() {
        let t = Tensor::randn(vec![64], 0.2, 3);
        assert_eq!(t.rms_diff(&t), 0.0);
    }

    #[test]
    fn rms_diff_grows_with_perturbation() {
        let t = Tensor::randn(vec![64], 0.2, 3);
        let mut p = t.clone();
        for v in p.data_mut() {
            *v += 0.01;
        }
        let small = t.rms_diff(&p);
        for v in p.data_mut() {
            *v += 0.04;
        }
        let large = t.rms_diff(&p);
        assert!(small > 0.0);
        assert!(large > small);
    }
}
