//! LHR — the Lower-Hamming-Rate regularization term (Eq. 6 of the paper).
//!
//! LHR adds a penalty to the training loss that drives quantized weights
//! towards local minima of the Hamming function (0, ±8, ±16 … for INT8),
//! lowering the network's HR — and therefore its worst-case IR-drop — while
//! the task loss keeps the weights close to values that preserve accuracy.
//!
//! The penalty is the sum over layers of the *squared* mean HR, so layers
//! with the highest HR receive the steepest gradient: the paper emphasises
//! reducing the peak per-layer HR, not only the network average, because the
//! worst macro in a group decides the group's safe V-f level.

use serde::{Deserialize, Serialize};

use crate::hamming::{layer_interpolated_hr, HrTable};

/// Configuration of the LHR regularizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LhrConfig {
    /// Regularization strength `λ` balancing HR reduction against task loss.
    pub lambda: f64,
}

impl LhrConfig {
    /// A default strength that, with the weight-regression proxy task, yields
    /// HR reductions in the 20–30 % band the paper reports for QAT.
    #[must_use]
    pub const fn default_strength() -> Self {
        Self { lambda: 4.0 }
    }

    /// Creates a configuration with an explicit `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be non-negative"
        );
        Self { lambda }
    }
}

impl Default for LhrConfig {
    fn default() -> Self {
        Self::default_strength()
    }
}

/// The LHR loss of one layer together with per-weight gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct LhrLayerLoss {
    /// Mean interpolated HR of the layer.
    pub mean_hr: f64,
    /// Contribution of this layer to `L_HR` (i.e. `mean_hr²`).
    pub loss: f64,
    /// Gradient of `L_HR` with respect to each float weight of the layer.
    pub gradients: Vec<f64>,
}

/// Evaluates the LHR loss for one layer of float weights under a scale.
///
/// `L_HR(layer) = HR(layer)²`, so the per-weight gradient is
/// `2·HR(layer) · ∂HR/∂w_i` with `∂HR/∂w_i` coming from the interpolated HR
/// of Eq. 5.
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
#[must_use]
pub fn lhr_layer_loss(weights: &[f32], scale: f64, table: &HrTable) -> LhrLayerLoss {
    let (mean_hr, hr_grads) = layer_interpolated_hr(weights, scale, table);
    let loss = mean_hr * mean_hr;
    let gradients = hr_grads.iter().map(|g| 2.0 * mean_hr * g).collect();
    LhrLayerLoss {
        mean_hr,
        loss,
        gradients,
    }
}

/// Network-level LHR loss: the sum of per-layer squared mean HR.
///
/// Accepts `(weights, scale)` pairs, one per layer; the `HrTable` is shared
/// because every layer of one network is quantized at the same precision.
#[must_use]
pub fn lhr_network_loss(layers: &[(&[f32], f64)], table: &HrTable) -> f64 {
    layers
        .iter()
        .map(|(w, s)| lhr_layer_loss(w, *s, table).loss)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn default_lambda_is_positive() {
        assert!(LhrConfig::default().lambda > 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be non-negative")]
    fn negative_lambda_is_rejected() {
        let _ = LhrConfig::new(-0.1);
    }

    #[test]
    fn loss_is_squared_mean_hr() {
        let table = HrTable::new(8);
        // Weights exactly on integers: -1 has HR 1.0, 0 has HR 0.0.
        let weights = [0.0f32, -1.0];
        let l = lhr_layer_loss(&weights, 1.0, &table);
        assert!((l.mean_hr - 0.5).abs() < 1e-12);
        assert!((l.loss - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gradient_scales_with_mean_hr() {
        let table = HrTable::new(8);
        // Two layers with the same fractional weight but different company:
        // the layer with higher overall HR gets a steeper gradient on the
        // shared weight — exactly the "penalise the worst layers" behaviour.
        let low_hr_layer = [0.4f32, 0.0, 8.0];
        let high_hr_layer = [0.4f32, -1.0, -3.0];
        let low = lhr_layer_loss(&low_hr_layer, 1.0, &table);
        let high = lhr_layer_loss(&high_hr_layer, 1.0, &table);
        assert!(high.mean_hr > low.mean_hr);
        assert!(high.gradients[0].abs() > low.gradients[0].abs());
    }

    #[test]
    fn descending_the_lhr_gradient_reduces_hr() {
        let table = HrTable::new(8);
        let t = Tensor::randn(vec![2048], 8.0, 21);
        let mut weights: Vec<f32> = t.data().to_vec();
        let before = lhr_layer_loss(&weights, 1.0, &table).mean_hr;
        let n = weights.len() as f64;
        for _ in 0..200 {
            let l = lhr_layer_loss(&weights, 1.0, &table);
            for (w, g) in weights.iter_mut().zip(&l.gradients) {
                // The per-weight gradient is normalised by layer size, so
                // scale the step accordingly.
                *w -= (0.5 * n * g) as f32;
            }
        }
        let after = lhr_layer_loss(&weights, 1.0, &table).mean_hr;
        assert!(
            after < before - 0.05,
            "pure LHR descent should cut HR markedly: before {before}, after {after}"
        );
    }

    #[test]
    fn network_loss_sums_layers() {
        let table = HrTable::new(8);
        let a = [0.0f32, -1.0];
        let b = [8.0f32, 8.0];
        let sum = lhr_network_loss(&[(&a, 1.0), (&b, 1.0)], &table);
        let expected = lhr_layer_loss(&a, 1.0, &table).loss + lhr_layer_loss(&b, 1.0, &table).loss;
        assert!((sum - expected).abs() < 1e-15);
    }

    #[test]
    fn empty_layer_contributes_nothing() {
        let table = HrTable::new(8);
        let l = lhr_layer_loss(&[], 1.0, &table);
        assert_eq!(l.loss, 0.0);
        assert!(l.gradients.is_empty());
    }
}
