//! WDS — Weight Distribution Shift (Algorithm 1 of the paper).
//!
//! After quantization (with or without LHR) weights remain roughly
//! zero-centred, so many of them are *small negative* integers — exactly the
//! values with the highest two's-complement Hamming weight (e.g. `-1` is all
//! ones).  WDS adds a constant `δ` to every weight of a layer *offline*, so
//! the matrix multiplication on the critical path runs with low-HR operands,
//! and then corrects the result afterwards:
//!
//! ```text
//! (W + δ)·x  −  δ·Σx   =   W·x
//! ```
//!
//! The correction is exact except for weights that clamp at the top of the
//! integer range (the paper measures < 1 % of weights overflowing, and those
//! clamp rather than wrap, trading a bounded numerical error for correctness
//! of sign).  `δ` must be a power of two so that the hardware shift
//! compensator can multiply by shifting.

use serde::{Deserialize, Serialize};

use crate::hamming::hamming_rate;
use crate::quant::QuantizedLayer;

/// Configuration of a WDS pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WdsConfig {
    /// The shift constant `δ` added to every weight (must be a power of two).
    pub delta: i8,
    /// Weight precision in bits (8 or 4).
    pub bits: u32,
}

impl WdsConfig {
    /// The paper's default for INT8 weights: `δ = 8`.
    #[must_use]
    pub const fn int8_default() -> Self {
        Self { delta: 8, bits: 8 }
    }

    /// The stronger INT8 setting evaluated in Table 2: `δ = 16`.
    #[must_use]
    pub const fn int8_strong() -> Self {
        Self { delta: 16, bits: 8 }
    }

    /// The paper's recommendation for INT4 weights: `δ = 2`.
    #[must_use]
    pub const fn int4_default() -> Self {
        Self { delta: 2, bits: 4 }
    }

    /// Creates a configuration, validating the power-of-two requirement.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not a positive power of two representable at the
    /// given precision, or `bits` is outside `2..=8`.
    #[must_use]
    pub fn new(delta: i8, bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8");
        assert!(delta > 0, "delta must be positive");
        assert!(
            delta.count_ones() == 1,
            "delta must be a power of two for the shift compensator"
        );
        let qmax = (1i16 << (bits - 1)) - 1;
        assert!(
            i16::from(delta) <= qmax,
            "delta {delta} not representable in {bits} bits"
        );
        Self { delta, bits }
    }

    /// The shift amount `k = log2(δ)` the hardware compensator uses.
    #[must_use]
    pub fn shift_amount(&self) -> u32 {
        self.delta.trailing_zeros()
    }
}

/// Result of applying WDS to a layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WdsOutcome {
    /// The shifted weights (same order as the input).
    pub weights: Vec<i8>,
    /// HR before the shift.
    pub hr_before: f64,
    /// HR after the shift.
    pub hr_after: f64,
    /// Number of weights that clamped at the top of the range.
    pub overflow_count: usize,
    /// The configuration used.
    pub config: WdsConfig,
}

impl WdsOutcome {
    /// Fraction of weights that clamped.
    #[must_use]
    pub fn overflow_fraction(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.overflow_count as f64 / self.weights.len() as f64
        }
    }

    /// Relative HR reduction achieved, clamped at 0.
    #[must_use]
    pub fn hr_reduction(&self) -> f64 {
        if self.hr_before <= 0.0 {
            0.0
        } else {
            ((self.hr_before - self.hr_after) / self.hr_before).max(0.0)
        }
    }
}

/// Applies WDS to a slice of quantized weights (Algorithm 1, offline part).
#[must_use]
pub fn apply_wds(weights: &[i8], config: &WdsConfig) -> WdsOutcome {
    let qmax = ((1i16 << (config.bits - 1)) - 1) as i8;
    let hr_before = hamming_rate(weights, config.bits);
    let mut overflow_count = 0usize;
    let shifted: Vec<i8> = weights
        .iter()
        .map(|&w| {
            let v = i16::from(w) + i16::from(config.delta);
            if v > i16::from(qmax) {
                overflow_count += 1;
                qmax
            } else {
                v as i8
            }
        })
        .collect();
    let hr_after = hamming_rate(&shifted, config.bits);
    WdsOutcome {
        weights: shifted,
        hr_before,
        hr_after,
        overflow_count,
        config: *config,
    }
}

/// Applies WDS to a [`QuantizedLayer`], returning the shifted layer and the
/// outcome statistics.  The layer's scheme is unchanged: the shift is a pure
/// integer-domain transformation undone by the compensator.
#[must_use]
pub fn apply_wds_to_layer(layer: &QuantizedLayer, delta: i8) -> (QuantizedLayer, WdsOutcome) {
    let config = WdsConfig::new(delta, layer.scheme.bits());
    let outcome = apply_wds(&layer.weights, &config);
    let shifted = QuantizedLayer {
        name: layer.name.clone(),
        weights: outcome.weights.clone(),
        scheme: layer.scheme,
    };
    (shifted, outcome)
}

/// The exact shift-compensation identity (Algorithm 1, lines 7–9), evaluated
/// in integer arithmetic: computes `(W+δ)·x − δ·Σx` for one output.
///
/// When no weight clamped, this equals `W·x` exactly; the difference for
/// clamped weights is bounded by `(overflow) · max|x|`.
///
/// # Panics
///
/// Panics if the operand lengths differ.
#[must_use]
pub fn compensated_dot(shifted_weights: &[i8], inputs: &[i32], delta: i8) -> i64 {
    assert_eq!(
        shifted_weights.len(),
        inputs.len(),
        "operand length mismatch"
    );
    let raw: i64 = shifted_weights
        .iter()
        .zip(inputs)
        .map(|(&w, &x)| i64::from(w) * i64::from(x))
        .sum();
    let input_sum: i64 = inputs.iter().map(|&x| i64::from(x)).sum();
    raw - i64::from(delta) * input_sum
}

/// Plain integer dot product, for checking the compensation identity.
///
/// # Panics
///
/// Panics if the operand lengths differ.
#[must_use]
pub fn plain_dot(weights: &[i8], inputs: &[i32]) -> i64 {
    assert_eq!(weights.len(), inputs.len(), "operand length mismatch");
    weights
        .iter()
        .zip(inputs)
        .map(|(&w, &x)| i64::from(w) * i64::from(x))
        .sum()
}

/// Sweeps candidate `δ` values and reports the resulting HR, normalised to
/// the unshifted HR — the data series behind the paper's Fig. 14.
///
/// Returns `(delta, normalized_hr)` pairs for `delta = 0..=max_delta`.
/// Non-power-of-two deltas are evaluated too (they are what the figure shows
/// going *wrong*), but [`WdsConfig::new`] still rejects them for production
/// use.
#[must_use]
pub fn delta_sweep(weights: &[i8], bits: u32, max_delta: i8) -> Vec<(i8, f64)> {
    let qmax = ((1i16 << (bits - 1)) - 1) as i8;
    let base_hr = hamming_rate(weights, bits).max(1e-12);
    (0..=max_delta)
        .map(|delta| {
            let shifted: Vec<i8> = weights
                .iter()
                .map(|&w| (i16::from(w) + i16::from(delta)).min(i16::from(qmax)) as i8)
                .collect();
            (delta, hamming_rate(&shifted, bits) / base_hr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantScheme;
    use crate::tensor::Tensor;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn gaussian_int8_weights(seed: u64, n: usize) -> Vec<i8> {
        let t = Tensor::randn(vec![n], 0.04, seed);
        let scheme = QuantScheme::fit(&t, 8);
        scheme.quantize_tensor(&t)
    }

    #[test]
    fn delta8_reduces_hr_on_gaussian_weights() {
        let w = gaussian_int8_weights(1, 8192);
        let out = apply_wds(&w, &WdsConfig::int8_default());
        assert!(out.hr_after < out.hr_before, "WDS must reduce HR");
        // A wide (not LHR-narrowed) gaussian only has a few percent of its
        // mass in the small-negative band δ=8 clears; across seeds the
        // reduction sits in the 0.03-0.055 range.
        assert!(
            out.hr_reduction() > 0.025,
            "reduction {}",
            out.hr_reduction()
        );
    }

    #[test]
    fn delta16_reduces_hr_at_least_as_much_as_delta8_on_narrow_distributions() {
        // With LHR-style narrow distributions (most mass within ±16 LSB),
        // δ=16 clears even more of the negative half-plane.
        let w = gaussian_int8_weights(2, 8192);
        let d8 = apply_wds(&w, &WdsConfig::int8_default());
        let d16 = apply_wds(&w, &WdsConfig::int8_strong());
        assert!(d16.hr_after <= d8.hr_after + 0.02);
    }

    #[test]
    fn overflow_stays_rare_for_realistic_distributions() {
        let w = gaussian_int8_weights(3, 8192);
        let out = apply_wds(&w, &WdsConfig::int8_strong());
        assert!(
            out.overflow_fraction() < 0.01,
            "paper reports <1 % overflow, got {}",
            out.overflow_fraction()
        );
    }

    #[test]
    fn compensation_identity_is_exact_without_overflow() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let weights: Vec<i8> = (0..256).map(|_| rng.gen_range(-100..=100)).collect();
        let inputs: Vec<i32> = (0..256).map(|_| rng.gen_range(-128..=127)).collect();
        let config = WdsConfig::int8_default();
        let out = apply_wds(&weights, &config);
        assert_eq!(out.overflow_count, 0, "test distribution must not overflow");
        let original = plain_dot(&weights, &inputs);
        let compensated = compensated_dot(&out.weights, &inputs, config.delta);
        assert_eq!(original, compensated, "WDS compensation must be exact");
    }

    #[test]
    fn compensation_error_is_bounded_by_overflow_amount() {
        // Force overflow with weights at the top of the range.
        let weights = vec![120i8, 125, 127, -3];
        let inputs = vec![1i32, 1, 1, 1];
        let config = WdsConfig::int8_default();
        let out = apply_wds(&weights, &config);
        assert!(out.overflow_count > 0);
        let original = plain_dot(&weights, &inputs);
        let compensated = compensated_dot(&out.weights, &inputs, config.delta);
        // Each clamped weight loses at most delta per unit input.
        let bound = i64::from(config.delta) * out.overflow_count as i64;
        assert!((original - compensated).abs() <= bound);
    }

    #[test]
    fn power_of_two_deltas_give_local_minima_in_the_sweep() {
        // Fig. 14: the sweep is taken on weights that already went through
        // LHR, so the distribution is concentrated at the low-HR lattice
        // points (0, ±8) with a narrow residual spread.  On that shape only
        // δ ∈ {8, 16} reduce HR; every other shift increases it.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let w: Vec<i8> = (0..8192)
            .map(|_| {
                let r: f64 = rng.gen_range(0.0..1.0);
                if r < 0.55 {
                    0i8
                } else if r < 0.70 {
                    8
                } else if r < 0.85 {
                    -8
                } else {
                    rng.gen_range(-12..=12)
                }
            })
            .collect();
        let sweep = delta_sweep(&w, 8, 16);
        let hr_at = |d: i8| sweep.iter().find(|(x, _)| *x == d).unwrap().1;
        assert!(hr_at(8) < 1.0);
        assert!(hr_at(16) < 1.0);
        assert!(hr_at(7) > hr_at(8));
        assert!(hr_at(9) > hr_at(8));
        assert!(hr_at(3) > 1.0, "small odd shifts increase HR");
        assert!(
            hr_at(8) < hr_at(16),
            "δ=8 is the best shift for this spread"
        );
    }

    #[test]
    fn layer_wrapper_preserves_scheme_and_name() {
        let t = Tensor::randn(vec![1024], 0.04, 5);
        let layer = QuantizedLayer::from_tensor("conv1", &t, 8);
        let (shifted, out) = apply_wds_to_layer(&layer, 8);
        assert_eq!(shifted.name, "conv1");
        assert_eq!(shifted.scheme, layer.scheme);
        assert_eq!(shifted.weights.len(), layer.weights.len());
        assert!(out.hr_after <= out.hr_before);
    }

    #[test]
    fn int4_default_delta_reduces_hr() {
        let t = Tensor::randn(vec![4096], 0.04, 6);
        let scheme = QuantScheme::fit(&t, 4);
        let w = scheme.quantize_tensor(&t);
        let out = apply_wds(&w, &WdsConfig::int4_default());
        assert!(out.hr_after < out.hr_before);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_delta_is_rejected() {
        let _ = WdsConfig::new(6, 8);
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn too_large_delta_is_rejected() {
        let _ = WdsConfig::new(16, 4);
    }

    #[test]
    fn shift_amount_is_log2_delta() {
        assert_eq!(WdsConfig::int8_default().shift_amount(), 3);
        assert_eq!(WdsConfig::int8_strong().shift_amount(), 4);
        assert_eq!(WdsConfig::int4_default().shift_amount(), 1);
    }
}
